//! Fuzz-hardening for the FROSTT `.tns` reader: arbitrary and adversarial
//! byte streams must produce a typed [`TnsError`] or a valid tensor —
//! never a panic, never a silently-truncated coordinate.

use cstf_tensor::{read_tns, TnsError};
use proptest::prelude::*;

/// One adversarial line class per variant; `render` produces the text.
#[derive(Debug, Clone)]
enum BadLine {
    Valid { coords: Vec<u64>, val: i64 },
    Truncated { tok: u64 },
    HugeIndex { mode_count: usize, huge: u64 },
    ExponentOverflow { coords: Vec<u64>, exp: u32 },
    NulBytes { coords: Vec<u64> },
    MixedArity { coords: Vec<u64> },
    Garbage { seeds: Vec<u64> },
}

fn bad_line_strategy() -> impl Strategy<Value = BadLine> {
    let coords = || proptest::collection::vec(1u64..50, 3usize..4);
    prop_oneof![
        (coords(), -100i64..100).prop_map(|(coords, val)| BadLine::Valid { coords, val }),
        (1u64..1000).prop_map(|tok| BadLine::Truncated { tok }),
        (1usize..4, (u32::MAX as u64 + 2)..u64::MAX)
            .prop_map(|(mode_count, huge)| BadLine::HugeIndex { mode_count, huge }),
        (coords(), 400u32..4000)
            .prop_map(|(coords, exp)| BadLine::ExponentOverflow { coords, exp }),
        coords().prop_map(|coords| BadLine::NulBytes { coords }),
        coords().prop_map(|coords| BadLine::MixedArity { coords }),
        proptest::collection::vec(any::<u64>(), 0usize..11)
            .prop_map(|seeds| BadLine::Garbage { seeds }),
    ]
}

fn render(line: &BadLine) -> String {
    let join = |cs: &[u64]| cs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
    match line {
        BadLine::Valid { coords, val } => format!("{} {}.5", join(coords), val),
        BadLine::Truncated { tok } => format!("{tok}"),
        BadLine::HugeIndex { mode_count, huge } => {
            let mut cs = vec![1u64; *mode_count];
            cs[0] = *huge;
            format!("{} 1.0", join(&cs))
        }
        BadLine::ExponentOverflow { coords, exp } => format!("{} 1e{exp}", join(coords)),
        BadLine::NulBytes { coords } => format!("{} 1.\u{0}5", join(coords)),
        BadLine::MixedArity { coords } => format!("{} 7 1.0", join(coords)),
        // Printable ASCII noise derived from the seeds (space..tilde).
        BadLine::Garbage { seeds } => {
            seeds.iter().map(|&s| char::from(b' ' + (s % 95) as u8)).collect()
        }
    }
}

/// True when this line, in a 3-coordinate file, must force a typed error.
fn must_fail(line: &BadLine) -> bool {
    match line {
        BadLine::Valid { .. } => false,
        BadLine::Truncated { .. } => true,
        // Either the arity differs from the established 3 coordinates, or
        // it matches and the first index overflows u32 — both are errors.
        BadLine::HugeIndex { .. } => true,
        // 1e400+ parses to +inf, which the reader rejects as non-finite.
        BadLine::ExponentOverflow { .. } => true,
        BadLine::NulBytes { .. } => true,
        // 4 tokens of coordinates against 3-coordinate lines elsewhere.
        BadLine::MixedArity { .. } => true,
        BadLine::Garbage { .. } => false, // may happen to parse; checked below
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the reader returns `Ok` or a typed `TnsError`,
    /// and never panics (a panic fails the proptest run itself).
    #[test]
    fn arbitrary_bytes_never_panic(words in proptest::collection::vec(any::<u64>(), 0usize..50)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        match read_tns(bytes.as_slice()) {
            Ok(t) => prop_assert!(t.nnz() > 0, "Ok implies at least one nonzero"),
            Err(TnsError::Io(_) | TnsError::Parse { .. } | TnsError::Empty) => {}
        }
    }

    /// Structured adversarial files: any file containing a malformed line
    /// errs with a typed `TnsError`; a file of only valid lines parses, and
    /// every parsed coordinate survives exactly (no u32 wrap-around).
    #[test]
    fn malformed_lines_give_typed_errors(
        lines in proptest::collection::vec(bad_line_strategy(), 1usize..12),
        lead_valid in proptest::collection::vec(
            (proptest::collection::vec(1u64..50, 3usize..4), -100i64..100), 1usize..4),
    ) {
        // Lead with well-formed 3-coordinate lines so arity is established.
        let mut text = String::new();
        for (coords, val) in &lead_valid {
            text.push_str(&render(&BadLine::Valid { coords: coords.clone(), val: *val }));
            text.push('\n');
        }
        for line in &lines {
            text.push_str(&render(line));
            text.push('\n');
        }
        let result = read_tns(text.as_bytes());
        if lines.iter().any(must_fail) {
            let err = result.expect_err("malformed line must be rejected");
            prop_assert!(
                matches!(err, TnsError::Parse { .. }),
                "malformed content maps to TnsError::Parse, got {err:?}"
            );
        } else if let Ok(t) = result {
            // Whatever parsed must be in-bounds: try_new enforced it.
            for m in 0..t.nmodes() {
                let dim = t.shape()[m] as u32;
                prop_assert!(t.mode_indices(m).iter().all(|&c| c < dim));
            }
        }
    }

    /// A coordinate just past u32::MAX + 1 is rejected, not wrapped onto
    /// row `c mod 2^32` — the truncation bug this suite was written for.
    #[test]
    fn huge_coordinates_are_rejected_not_wrapped(extra in 1u64..1_000_000) {
        let c = u32::MAX as u64 + 1 + extra;
        let text = format!("{c} 1 1 1.0\n");
        let err = read_tns(text.as_bytes()).expect_err("overflowing coordinate");
        match err {
            TnsError::Parse { line, message } => {
                prop_assert_eq!(line, 1);
                prop_assert!(message.contains("exceeds"), "{}", message);
            }
            other => return Err(TestCaseError::fail(format!("expected Parse, got {other:?}"))),
        }
    }
}
