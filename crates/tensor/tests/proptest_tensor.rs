//! Property-based tests for the tensor types.

use cstf_linalg::Mat;
use cstf_tensor::{read_tns, write_tns, Ktensor, SparseTensor};
use proptest::prelude::*;

fn tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (2usize..5, 1usize..60, any::<u64>()).prop_flat_map(|(nmodes, nnz, seed)| {
        proptest::collection::vec(1usize..12, nmodes).prop_map(move |shape| {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u32
            };
            let mut seen = std::collections::HashSet::new();
            let mut idx = vec![Vec::new(); shape.len()];
            let mut vals = Vec::new();
            for _ in 0..nnz {
                let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
                if seen.insert(c.clone()) {
                    for (m, &ci) in c.iter().enumerate() {
                        idx[m].push(ci);
                    }
                    // Values on a grid so text round-trips are exact.
                    vals.push(f64::from(next() % 512) * 0.125 - 32.0);
                }
            }
            SparseTensor::new(shape, idx, vals)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sorting by any mode preserves the (coordinate -> value) mapping.
    #[test]
    fn sorting_is_a_permutation(x in tensor_strategy(), mode_pick in any::<usize>()) {
        if x.nnz() == 0 { return Ok(()); }
        let mode = mode_pick % x.nmodes();
        let mut sorted = x.clone();
        sorted.sort_by_mode(mode);
        prop_assert_eq!(sorted.nnz(), x.nnz());
        prop_assert!(sorted.mode_indices(mode).windows(2).all(|w| w[0] <= w[1]));
        for k in 0..x.nnz() {
            let c = x.coord(k);
            prop_assert_eq!(sorted.get(&c), x.get(&c));
        }
    }

    /// norm_sq is invariant under sorting and round-trips through .tns.
    #[test]
    fn norm_is_representation_invariant(x in tensor_strategy(), mode_pick in any::<usize>()) {
        if x.nnz() == 0 { return Ok(()); }
        let mode = mode_pick % x.nmodes();
        let mut sorted = x.clone();
        sorted.sort_by_mode(mode);
        prop_assert!((sorted.norm_sq() - x.norm_sq()).abs() < 1e-9 * (1.0 + x.norm_sq()));

        let mut buf = Vec::new();
        write_tns(&x, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        prop_assert!((back.norm_sq() - x.norm_sq()).abs() < 1e-9 * (1.0 + x.norm_sq()));
    }

    /// sum_duplicates is idempotent and preserves value totals.
    #[test]
    fn dedup_is_idempotent(x in tensor_strategy()) {
        if x.nnz() == 0 { return Ok(()); }
        let total: f64 = x.values().iter().sum();
        let mut once = x.clone();
        once.sum_duplicates();
        let mut twice = once.clone();
        twice.sum_duplicates();
        prop_assert_eq!(once.nnz(), twice.nnz());
        let total_once: f64 = once.values().iter().sum();
        prop_assert!((total_once - total).abs() < 1e-9 * (1.0 + total.abs()));
    }

    /// Ktensor fit of the tensor against a random model is always <= 1 and
    /// exactly 1 when the tensor IS the model's dense evaluation.
    #[test]
    fn fit_bounds(x in tensor_strategy(), seed in any::<u64>()) {
        if x.nnz() == 0 { return Ok(()); }
        let rank = 2;
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) + 0.05
        };
        let model = Ktensor::from_factors(
            x.shape().iter().map(|&d| Mat::from_fn(d, rank, |_, _| next())).collect(),
        );
        let fit = model.fit(&x);
        prop_assert!(fit <= 1.0 + 1e-12, "fit {fit} > 1");
        prop_assert!(fit.is_finite());
        // residual_sq is consistent with fit.
        let res = model.residual_sq(&x);
        prop_assert!(res >= 0.0);
    }

    /// value_at is multilinear: scaling one factor's row scales exactly the
    /// model values with that index.
    #[test]
    fn model_is_multilinear(seed in any::<u64>(), alpha in 0.5f64..3.0) {
        let shape = [4usize, 3, 3];
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / u32::MAX as f64) + 0.1
        };
        let factors: Vec<Mat> =
            shape.iter().map(|&d| Mat::from_fn(d, 2, |_, _| next())).collect();
        let base = Ktensor::from_factors(factors.clone());
        let mut scaled_factors = factors;
        for j in 0..2 {
            scaled_factors[0][(1, j)] *= alpha;
        }
        let scaled = Ktensor::from_factors(scaled_factors);
        // Coordinates with i0 == 1 scale by alpha; others are unchanged.
        for i1 in 0..3u32 {
            for i2 in 0..3u32 {
                let v_hit = scaled.value_at(&[1, i1, i2]);
                let b_hit = base.value_at(&[1, i1, i2]);
                prop_assert!((v_hit - alpha * b_hit).abs() < 1e-9 * (1.0 + b_hit.abs()));
                let v_miss = scaled.value_at(&[0, i1, i2]);
                let b_miss = base.value_at(&[0, i1, i2]);
                prop_assert!((v_miss - b_miss).abs() < 1e-12 * (1.0 + b_miss.abs()));
            }
        }
    }
}
