//! N-mode sparse tensor in coordinate (COO) form.
//!
//! COO is the interchange format of the framework: datasets are generated or
//! loaded into COO and then compiled into the compressed formats (CSF, ALTO,
//! BLCO) by `cstf-formats`. Indices are stored structure-of-arrays — one
//! `Vec<u32>` per mode — which is the layout every compiler and the reference
//! MTTKRP want to stream.

use rayon::prelude::*;

/// An N-mode sparse tensor holding `nnz` explicit (coordinate, value) pairs.
///
/// Invariants (checked by [`SparseTensor::new`] and preserved by all
/// methods): every mode's index vector has length `nnz`, and every index is
/// strictly less than the mode's dimension.
#[derive(Clone, Debug)]
pub struct SparseTensor {
    shape: Vec<usize>,
    /// `indices[m][k]` is the mode-`m` coordinate of nonzero `k`.
    indices: Vec<Vec<u32>>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Builds a tensor from per-mode coordinate vectors and values.
    ///
    /// # Panics
    /// Panics if lengths disagree, any coordinate is out of bounds, or any
    /// value is non-finite. Prefer [`SparseTensor::try_new`] for untrusted
    /// input.
    pub fn new(shape: Vec<usize>, indices: Vec<Vec<u32>>, values: Vec<f64>) -> Self {
        Self::try_new(shape, indices, values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a tensor, returning a descriptive error instead of panicking
    /// when lengths disagree, a coordinate is out of bounds, or a value is
    /// non-finite (NaN/infinite).
    pub fn try_new(
        shape: Vec<usize>,
        indices: Vec<Vec<u32>>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if indices.len() != shape.len() {
            return Err(format!(
                "one index vector per mode required: got {} index vectors for {} modes",
                indices.len(),
                shape.len()
            ));
        }
        for (m, idx) in indices.iter().enumerate() {
            if idx.len() != values.len() {
                return Err(format!(
                    "mode {m} index count must equal nnz ({} vs {})",
                    idx.len(),
                    values.len()
                ));
            }
            let dim = shape[m];
            if let Some(&i) = idx.iter().find(|&&i| (i as usize) >= dim) {
                return Err(format!("mode {m} has an index out of bounds (dim {dim}): {i}"));
            }
        }
        if let Some((k, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(format!("non-finite value {v} at nonzero {k}"));
        }
        Ok(Self { shape, indices, values })
    }

    /// An empty tensor of the given shape.
    pub fn empty(shape: Vec<usize>) -> Self {
        let nmodes = shape.len();
        Self { shape, indices: vec![Vec::new(); nmodes], values: Vec::new() }
    }

    /// Number of modes (tensor order).
    #[inline]
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Mode dimensions.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Dimension of one mode.
    #[inline]
    pub fn dim(&self, mode: usize) -> usize {
        self.shape[mode]
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mode-`m` coordinates of all nonzeros.
    #[inline]
    pub fn mode_indices(&self, mode: usize) -> &[u32] {
        &self.indices[mode]
    }

    /// The nonzero values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the nonzero values (coordinates fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Fraction of occupied cells: `nnz / prod(shape)` (computed in `f64` to
    /// survive the paper's 10^13-cell tensors).
    pub fn density(&self) -> f64 {
        let cells: f64 = self.shape.iter().map(|&d| d as f64).product();
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Squared Frobenius norm `sum x_k^2`.
    pub fn norm_sq(&self) -> f64 {
        if self.nnz() >= 64 * 1024 {
            self.values.par_iter().map(|&v| v * v).sum()
        } else {
            self.values.iter().map(|&v| v * v).sum()
        }
    }

    /// The full coordinate of nonzero `k` as a small vector.
    pub fn coord(&self, k: usize) -> Vec<u32> {
        self.indices.iter().map(|idx| idx[k]).collect()
    }

    /// Sorts nonzeros lexicographically with `mode` as the major key and the
    /// remaining modes in ascending order as tie-breakers. Compressed-format
    /// compilers (CSF in particular) require this ordering.
    pub fn sort_by_mode(&mut self, mode: usize) {
        assert!(mode < self.nmodes(), "sort mode out of range");
        let nmodes = self.nmodes();
        let order: Vec<usize> =
            std::iter::once(mode).chain((0..nmodes).filter(|&m| m != mode)).collect();

        let mut perm: Vec<u32> = (0..self.nnz() as u32).collect();
        let indices = &self.indices;
        perm.par_sort_unstable_by(|&a, &b| {
            for &m in &order {
                match indices[m][a as usize].cmp(&indices[m][b as usize]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        self.apply_permutation(&perm);
    }

    /// Reorders nonzeros by the given permutation (`new[k] = old[perm[k]]`).
    pub(crate) fn apply_permutation(&mut self, perm: &[u32]) {
        debug_assert_eq!(perm.len(), self.nnz());
        for idx in &mut self.indices {
            let src = std::mem::take(idx);
            *idx = perm.iter().map(|&p| src[p as usize]).collect();
        }
        let src = std::mem::take(&mut self.values);
        self.values = perm.iter().map(|&p| src[p as usize]).collect();
    }

    /// Merges duplicate coordinates by summing their values. The result is
    /// sorted by mode 0.
    pub fn sum_duplicates(&mut self) {
        if self.nnz() <= 1 {
            return;
        }
        self.sort_by_mode(0);
        let nmodes = self.nmodes();
        fn same(indices: &[Vec<u32>], a: usize, b: usize) -> bool {
            indices.iter().all(|idx| idx[a] == idx[b])
        }

        let mut write = 0usize;
        for read in 1..self.nnz() {
            if same(&self.indices, write, read) {
                self.values[write] += self.values[read];
            } else {
                write += 1;
                for m in 0..nmodes {
                    self.indices[m][write] = self.indices[m][read];
                }
                self.values[write] = self.values[read];
            }
        }
        let keep = write + 1;
        for idx in &mut self.indices {
            idx.truncate(keep);
        }
        self.values.truncate(keep);
    }

    /// Drops explicitly stored zeros (|value| <= tol).
    pub fn prune_zeros(&mut self, tol: f64) {
        let keep: Vec<usize> = (0..self.nnz()).filter(|&k| self.values[k].abs() > tol).collect();
        if keep.len() == self.nnz() {
            return;
        }
        for idx in &mut self.indices {
            let src = std::mem::take(idx);
            *idx = keep.iter().map(|&k| src[k]).collect();
        }
        let src = std::mem::take(&mut self.values);
        self.values = keep.iter().map(|&k| src[k]).collect();
    }

    /// Looks up the value at a coordinate by linear scan (test/debug helper —
    /// O(nnz)).
    pub fn get(&self, coord: &[u32]) -> f64 {
        assert_eq!(coord.len(), self.nmodes());
        'outer: for k in 0..self.nnz() {
            for (m, &c) in coord.iter().enumerate() {
                if self.indices[m][k] != c {
                    continue 'outer;
                }
            }
            return self.values[k];
        }
        0.0
    }
}

impl cstf_telemetry::MemoryFootprint for SparseTensor {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        let mut fp = cstf_telemetry::Footprint::new();
        fp.add("shape", cstf_telemetry::vec_heap_bytes(&self.shape));
        fp.add("indices", cstf_telemetry::nested_vec_heap_bytes(&self.indices));
        fp.add("values", cstf_telemetry::vec_heap_bytes(&self.values));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SparseTensor {
        // 3x4x2 tensor with 4 nonzeros.
        SparseTensor::new(
            vec![3, 4, 2],
            vec![vec![0, 2, 1, 0], vec![3, 0, 1, 3], vec![1, 0, 1, 0]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
    }

    #[test]
    fn shape_and_counts() {
        let t = toy();
        assert_eq!(t.nmodes(), 3);
        assert_eq!(t.shape(), &[3, 4, 2]);
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.dim(1), 4);
    }

    #[test]
    fn density_of_toy() {
        let t = toy();
        assert!((t.density() - 4.0 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn norm_sq_sums_squares() {
        assert_eq!(toy().norm_sq(), 1.0 + 4.0 + 9.0 + 16.0);
    }

    #[test]
    fn footprint_matches_capacity_sum() {
        use cstf_telemetry::MemoryFootprint;
        let t = toy();
        let vb = |c: usize, sz: usize| (c * sz) as u64;
        let shape = vb(t.shape.capacity(), std::mem::size_of::<usize>());
        let spine = vb(t.indices.capacity(), std::mem::size_of::<Vec<u32>>());
        let inners: u64 =
            t.indices.iter().map(|v| vb(v.capacity(), std::mem::size_of::<u32>())).sum();
        let values = vb(t.values.capacity(), std::mem::size_of::<f64>());
        assert_eq!(t.heap_bytes(), shape + spine + inners + values);
        assert_eq!(t.footprint().get("indices"), spine + inners);
    }

    #[test]
    fn get_finds_values_and_zeros() {
        let t = toy();
        assert_eq!(t.get(&[2, 0, 0]), 2.0);
        assert_eq!(t.get(&[1, 1, 1]), 3.0);
        assert_eq!(t.get(&[2, 2, 1]), 0.0);
    }

    #[test]
    fn sort_by_mode_orders_major_key() {
        let mut t = toy();
        t.sort_by_mode(1);
        let m1 = t.mode_indices(1);
        assert!(m1.windows(2).all(|w| w[0] <= w[1]));
        // Values stay attached to their coordinates.
        assert_eq!(t.get(&[2, 0, 0]), 2.0);
        assert_eq!(t.get(&[0, 3, 1]), 1.0);
    }

    #[test]
    fn sort_tiebreaks_on_remaining_modes() {
        let mut t = toy();
        t.sort_by_mode(0);
        // Nonzeros 0 and 3 share mode-0 index 0; tie-break is mode 1 then 2:
        // (0,3,0) must precede (0,3,1).
        assert_eq!(t.coord(0), vec![0, 3, 0]);
        assert_eq!(t.coord(1), vec![0, 3, 1]);
    }

    #[test]
    fn sum_duplicates_merges() {
        let mut t =
            SparseTensor::new(vec![2, 2], vec![vec![0, 1, 0], vec![1, 0, 1]], vec![2.0, 5.0, 3.0]);
        t.sum_duplicates();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 1]), 5.0);
        assert_eq!(t.get(&[1, 0]), 5.0);
    }

    #[test]
    fn prune_zeros_removes_small_entries() {
        let mut t = SparseTensor::new(vec![2, 2], vec![vec![0, 1], vec![0, 1]], vec![1e-16, 7.0]);
        t.prune_zeros(1e-12);
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.get(&[1, 1]), 7.0);
    }

    #[test]
    fn empty_tensor_is_well_formed() {
        let t = SparseTensor::empty(vec![5, 6, 7]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.norm_sq(), 0.0);
        assert_eq!(t.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_rejected() {
        SparseTensor::new(vec![2, 2], vec![vec![0], vec![2]], vec![1.0]);
    }

    #[test]
    fn try_new_rejects_bad_input_without_panicking() {
        let err = SparseTensor::try_new(vec![2, 2], vec![vec![0], vec![0]], vec![f64::INFINITY])
            .expect_err("non-finite values must be rejected");
        assert!(err.contains("non-finite"), "{err}");
        let err = SparseTensor::try_new(vec![2, 2], vec![vec![0], vec![2]], vec![1.0])
            .expect_err("out-of-bounds coordinates must be rejected");
        assert!(err.contains("out of bounds"), "{err}");
        let err = SparseTensor::try_new(vec![2], vec![vec![0], vec![0]], vec![1.0])
            .expect_err("mode count mismatch must be rejected");
        assert!(err.contains("one index vector per mode"), "{err}");
        let err = SparseTensor::try_new(vec![2, 2], vec![vec![0, 1], vec![0]], vec![1.0])
            .expect_err("ragged indices must be rejected");
        assert!(err.contains("must equal nnz"), "{err}");
        assert!(SparseTensor::try_new(vec![2, 2], vec![vec![0], vec![1]], vec![1.0]).is_ok());
    }
}
