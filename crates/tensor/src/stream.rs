//! Streaming, tile-at-a-time `.tns` ingestion for out-of-core runs.
//!
//! The in-core reader ([`crate::io::read_tns`]) materializes the whole
//! coordinate tensor before anything can be compiled — exactly the
//! allocation a memory-budgeted run cannot afford. This module replaces it
//! with two bounded passes:
//!
//! 1. **Scan** ([`scan_tns`]): one pass that records the shape (running
//!    per-mode maximum), the nonzero count, the squared Frobenius norm,
//!    and a per-mode row histogram — `O(sum of mode lengths)` memory,
//!    never the nonzeros themselves.
//! 2. **Tile reads** ([`read_tns_tile`], driven by [`read_tns_tiles`]):
//!    for each (mode, tile) pair, a re-read that keeps only the nonzeros
//!    whose mode index falls in the tile's row range, pre-sized exactly
//!    from the histogram. At most one tile's coordinates are live at a
//!    time.
//!
//! Tile row ranges come from [`balanced_ranges_from_counts`] — the single
//! range-partitioning implementation in the workspace
//! (`cstf_formats::nnz_balanced_ranges` delegates here), so streamed tiles
//! land on **bitwise-identical boundaries** to in-core tiling and the
//! out-of-core factorization path inherits the sharded-equivalence proof.
//!
//! The per-tile sub-tensors keep the full (scanned) shape and global
//! indices and preserve file order — the same semantics as
//! `cstf_formats::extract_mode_rows` applied to the in-core parse, which
//! is what makes streamed construction bit-exact.
//!
//! `norm_sq` is accumulated serially in file order, matching
//! [`SparseTensor::norm_sq`]'s serial path (used below its parallel
//! threshold of 64 Ki nonzeros) bit for bit.

use std::io::{BufRead, BufReader, Read};
use std::ops::Range;
use std::path::Path;

use crate::io::{parse_tns_line, TnsError};
use crate::sparse::SparseTensor;

/// Summary of one streaming pass over a `.tns` input: everything a tiling
/// planner and the tile reads need, in `O(sum of mode lengths)` memory.
#[derive(Debug, Clone)]
pub struct TnsScan {
    /// Inferred shape (per-mode maximum coordinate), identical to the
    /// shape [`crate::read_tns`] would infer.
    pub shape: Vec<usize>,
    /// Number of nonzero lines.
    pub nnz: usize,
    /// Squared Frobenius norm, accumulated serially in file order.
    pub norm_sq: f64,
    /// `mode_counts[m][i]` = number of nonzeros whose mode-`m` index is
    /// `i` — the histogram nnz-balanced tile ranges are computed from.
    pub mode_counts: Vec<Vec<usize>>,
}

impl TnsScan {
    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Approximate bytes of the coordinate (COO) representation of the
    /// full tensor: `nnz * (4 bytes per mode index + 8 bytes of value)` —
    /// the same accounting the drivers use for COO device residency.
    pub fn coo_bytes(&self) -> u64 {
        self.nnz as u64 * (self.nmodes() as u64 * 4 + 8)
    }

    /// The nnz-balanced tile row ranges for `mode` at tile count `tiles`
    /// (see [`balanced_ranges_from_counts`]).
    pub fn tile_ranges(&self, mode: usize, tiles: usize) -> Vec<Range<usize>> {
        balanced_ranges_from_counts(&self.mode_counts[mode], tiles)
    }
}

/// Splits `0..counts.len()` into exactly `parts` contiguous ranges with
/// near-equal weight: range `j` closes once the cumulative weight reaches
/// `(j+1) * total / parts`. Trailing ranges may be empty; together the
/// ranges cover `0..counts.len()`.
///
/// This is the **only** range-partitioning implementation in the
/// workspace: `cstf_formats::nnz_balanced_ranges` builds its per-row
/// nonzero histogram and delegates here, and the streaming tile reader
/// uses the scan histogram directly — so in-core shards/tiles and
/// streamed tiles land on identical boundaries by construction.
pub fn balanced_ranges_from_counts(counts: &[usize], parts: usize) -> Vec<Range<usize>> {
    let rows = counts.len();
    let parts = parts.max(1);
    let total: usize = counts.iter().sum();

    let mut out = Vec::with_capacity(parts);
    let mut row = 0usize;
    let mut cum = 0usize;
    for j in 0..parts {
        let start = row;
        if j + 1 == parts {
            row = rows;
        } else {
            let target = (j + 1) * total / parts;
            while row < rows && cum < target {
                cum += counts[row];
                row += 1;
            }
        }
        out.push(start..row);
    }
    out
}

/// Scans a `.tns` input without materializing any nonzeros. Accepts and
/// rejects exactly the inputs [`crate::read_tns`] does (shared line
/// parser), including [`TnsError::Empty`] for a nonzero-free input.
pub fn scan_tns<R: Read>(reader: R) -> Result<TnsScan, TnsError> {
    let mut mode_counts: Vec<Vec<usize>> = Vec::new();
    let mut nnz = 0usize;
    let mut norm_sq = 0.0f64;
    let mut coords: Vec<u32> = Vec::new();
    let mut line_buf = String::new();
    let mut br = BufReader::new(reader);
    let mut lineno = 0usize;

    loop {
        line_buf.clear();
        if br.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let expected = if mode_counts.is_empty() { None } else { Some(mode_counts.len()) };
        let Some(v) = parse_tns_line(&line_buf, lineno, expected, &mut coords)? else {
            continue;
        };
        if mode_counts.is_empty() {
            mode_counts = vec![Vec::new(); coords.len()];
        }
        for (m, &c) in coords.iter().enumerate() {
            let i = c as usize;
            if i >= mode_counts[m].len() {
                mode_counts[m].resize(i + 1, 0);
            }
            mode_counts[m][i] += 1;
        }
        nnz += 1;
        norm_sq += v * v;
    }

    if nnz == 0 {
        return Err(TnsError::Empty);
    }
    let shape: Vec<usize> = mode_counts.iter().map(Vec::len).collect();
    Ok(TnsScan { shape, nnz, norm_sq, mode_counts })
}

/// Re-reads a `.tns` input keeping only the nonzeros whose mode-`mode`
/// index falls in `rows`, as a sub-tensor with the full scanned shape,
/// global indices, and file order preserved — the streaming equivalent of
/// `cstf_formats::extract_mode_rows` on the in-core parse.
///
/// The index/value vectors are sized exactly from the scan histogram, so
/// the peak live allocation is one tile, not the whole tensor. A
/// coordinate outside the scanned shape means the input changed between
/// the passes and is reported as a parse error.
///
/// # Panics
/// Panics if `mode` or `rows` is out of range for the scan.
pub fn read_tns_tile<R: Read>(
    reader: R,
    scan: &TnsScan,
    mode: usize,
    rows: &Range<usize>,
) -> Result<SparseTensor, TnsError> {
    assert!(mode < scan.nmodes(), "mode out of range");
    assert!(rows.end <= scan.shape[mode], "row range out of bounds");
    let nmodes = scan.nmodes();
    let tile_nnz: usize = scan.mode_counts[mode][rows.clone()].iter().sum();
    let mut indices: Vec<Vec<u32>> = (0..nmodes).map(|_| Vec::with_capacity(tile_nnz)).collect();
    let mut values: Vec<f64> = Vec::with_capacity(tile_nnz);
    let mut coords: Vec<u32> = Vec::new();
    let mut line_buf = String::new();
    let mut br = BufReader::new(reader);
    let mut lineno = 0usize;

    loop {
        line_buf.clear();
        if br.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let Some(v) = parse_tns_line(&line_buf, lineno, Some(nmodes), &mut coords)? else {
            continue;
        };
        for (m, &c) in coords.iter().enumerate() {
            if c as usize >= scan.shape[m] {
                return Err(TnsError::Parse {
                    line: lineno,
                    message: format!(
                        "coordinate {} exceeds the scanned mode-{m} length {} (input changed \
                         between scan and tile passes?)",
                        c as u64 + 1,
                        scan.shape[m]
                    ),
                });
            }
        }
        if !rows.contains(&(coords[mode] as usize)) {
            continue;
        }
        for (m, &c) in coords.iter().enumerate() {
            indices[m].push(c);
        }
        values.push(v);
    }

    SparseTensor::try_new(scan.shape.clone(), indices, values)
        .map_err(|message| TnsError::Parse { line: lineno, message })
}

/// Streams a `.tns` input as per-mode, nnz-balanced tiles without ever
/// materializing the full coordinate tensor.
///
/// `open` re-opens the input (once for the scan, once per (mode, tile));
/// `visit(mode, tile, rows, sub)` receives each tile's sub-tensor in
/// (mode-major, tile-minor) order and owns it — at most one tile is live
/// inside this function at a time. Returns the scan for the caller's
/// shape/norm bookkeeping.
pub fn read_tns_tiles<R, O, V>(mut open: O, tiles: usize, mut visit: V) -> Result<TnsScan, TnsError>
where
    R: Read,
    O: FnMut() -> std::io::Result<R>,
    V: FnMut(usize, usize, &Range<usize>, SparseTensor) -> Result<(), TnsError>,
{
    let scan = scan_tns(open()?)?;
    for mode in 0..scan.nmodes() {
        let ranges = scan.tile_ranges(mode, tiles);
        for (t, rows) in ranges.iter().enumerate() {
            let sub = read_tns_tile(open()?, &scan, mode, rows)?;
            visit(mode, t, rows, sub)?;
        }
    }
    Ok(scan)
}

/// [`read_tns_tiles`] over a file path.
pub fn read_tns_tiles_file<V>(
    path: impl AsRef<Path>,
    tiles: usize,
    visit: V,
) -> Result<TnsScan, TnsError>
where
    V: FnMut(usize, usize, &Range<usize>, SparseTensor) -> Result<(), TnsError>,
{
    let path = path.as_ref();
    read_tns_tiles(|| std::fs::File::open(path), tiles, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_tns;

    fn sample() -> String {
        let mut s = String::from("# header comment\n");
        let mut state: u64 = 0xfeed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..200 {
            let i = next() % 17 + 1;
            let j = next() % 9 + 1;
            let k = next() % 13 + 1;
            let v = f64::from(next() % 1000) / 64.0 - 5.0;
            s.push_str(&format!("{i} {j} {k} {v}\n"));
        }
        s
    }

    #[test]
    fn scan_matches_in_core_parse() {
        let text = sample();
        let x = read_tns(text.as_bytes()).unwrap();
        let scan = scan_tns(text.as_bytes()).unwrap();
        assert_eq!(scan.shape, x.shape());
        assert_eq!(scan.nnz, x.nnz());
        assert_eq!(scan.norm_sq.to_bits(), x.norm_sq().to_bits());
        for m in 0..x.nmodes() {
            let mut counts = vec![0usize; x.shape()[m]];
            for &i in x.mode_indices(m) {
                counts[i as usize] += 1;
            }
            assert_eq!(scan.mode_counts[m], counts);
        }
    }

    #[test]
    fn tiles_partition_and_preserve_order() {
        let text = sample();
        let x = read_tns(text.as_bytes()).unwrap();
        let scan = scan_tns(text.as_bytes()).unwrap();
        for tiles in [1usize, 2, 3, 5] {
            for mode in 0..x.nmodes() {
                let ranges = scan.tile_ranges(mode, tiles);
                assert_eq!(ranges.len(), tiles);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, x.shape()[mode]);
                let mut total = 0usize;
                for rows in &ranges {
                    let sub = read_tns_tile(text.as_bytes(), &scan, mode, rows).unwrap();
                    assert_eq!(sub.shape(), x.shape());
                    total += sub.nnz();
                    // File order within the tile == storage order of the
                    // in-core parse restricted to the tile's rows.
                    let want: Vec<(Vec<u32>, u64)> = (0..x.nnz())
                        .filter(|&k| rows.contains(&(x.mode_indices(mode)[k] as usize)))
                        .map(|k| (x.coord(k), x.values()[k].to_bits()))
                        .collect();
                    let got: Vec<(Vec<u32>, u64)> =
                        (0..sub.nnz()).map(|k| (sub.coord(k), sub.values()[k].to_bits())).collect();
                    assert_eq!(got, want);
                }
                assert_eq!(total, x.nnz());
            }
        }
    }

    #[test]
    fn tile_driver_visits_every_mode_tile_pair() {
        let text = sample();
        let mut seen = Vec::new();
        let scan = read_tns_tiles(
            || Ok(text.as_bytes()),
            3,
            |mode, tile, rows, sub| {
                seen.push((mode, tile, rows.clone(), sub.nnz()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen.len(), 3 * scan.nmodes());
        for mode in 0..scan.nmodes() {
            let nnz: usize = seen.iter().filter(|(m, ..)| *m == mode).map(|&(.., nnz)| nnz).sum();
            assert_eq!(nnz, scan.nnz, "mode {mode} tiles must partition the nonzeros");
        }
    }

    #[test]
    fn balanced_ranges_match_degenerate_cases() {
        assert_eq!(balanced_ranges_from_counts(&[], 3), vec![0..0, 0..0, 0..0]);
        assert_eq!(balanced_ranges_from_counts(&[5], 1), vec![0..1]);
        // More parts than rows yields trailing empties.
        let r = balanced_ranges_from_counts(&[1, 1], 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.last().unwrap().end, 2);
        assert!(r.iter().filter(|r| r.is_empty()).count() >= 2);
    }

    #[test]
    fn scan_rejects_what_read_tns_rejects() {
        for text in ["", "# only\n", "1 1 1 2.0\n1 1 3.0\n", "0 1 3.0\n", "1 1 NaN\n"] {
            let a = read_tns(text.as_bytes()).err().map(|e| e.to_string());
            let b = scan_tns(text.as_bytes()).err().map(|e| e.to_string());
            assert_eq!(a, b, "divergent rejection for {text:?}");
        }
    }

    #[test]
    fn empty_tile_is_a_valid_tensor() {
        let text = "2 1 1 1.0\n";
        let scan = scan_tns(text.as_bytes()).unwrap();
        let sub = read_tns_tile(text.as_bytes(), &scan, 0, &(0..1)).unwrap();
        assert_eq!(sub.nnz(), 0);
        assert_eq!(sub.shape(), &[2, 1, 1]);
    }
}
