//! Dense N-mode tensor.
//!
//! Used for the paper's *DenseTF* preliminary study (Figure 1): a synthetic
//! `400 x 200 x 100 x 50` dense tensor whose MTTKRP cost is proportional to
//! the product of all mode lengths, in contrast to the nnz-bound sparse case.

use rayon::prelude::*;

use cstf_linalg::Mat;

/// A dense tensor stored contiguously with the **last mode fastest**
/// (row-major over the mode tuple).
#[derive(Clone, Debug)]
pub struct DenseTensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// A zero tensor of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self { shape, data: vec![0.0; len] }
    }

    /// Builds a tensor from a function of the coordinate.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        let mut coord = vec![0usize; shape.len()];
        for _ in 0..len {
            data.push(f(&coord));
            // Odometer increment, last mode fastest.
            for m in (0..shape.len()).rev() {
                coord[m] += 1;
                if coord[m] < shape[m] {
                    break;
                }
                coord[m] = 0;
            }
        }
        Self { shape, data }
    }

    /// Mode dimensions.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.shape.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-cell tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer (last mode fastest).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable buffer access.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Linear offset of a coordinate.
    #[inline]
    pub fn offset(&self, coord: &[usize]) -> usize {
        debug_assert_eq!(coord.len(), self.shape.len());
        let mut off = 0usize;
        for (c, d) in coord.iter().zip(&self.shape) {
            debug_assert!(c < d);
            off = off * d + c;
        }
        off
    }

    /// Value at a coordinate.
    pub fn get(&self, coord: &[usize]) -> f64 {
        self.data[self.offset(coord)]
    }

    /// Sets the value at a coordinate.
    pub fn set(&mut self, coord: &[usize], v: f64) {
        let off = self.offset(coord);
        self.data[off] = v;
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        if self.data.len() >= 64 * 1024 {
            self.data.par_iter().map(|&v| v * v).sum()
        } else {
            self.data.iter().map(|&v| v * v).sum()
        }
    }

    /// Dense mode-`n` MTTKRP: `M = X_(n) * khatri_rao(all factors except n)`.
    ///
    /// Implemented coordinate-wise (equivalent to the unfolded GEMM but
    /// without materializing the Khatri-Rao product): for every cell `x`,
    /// accumulate `x * hadamard(rows of other factors)` into row
    /// `coord[n]` of the output. Parallelized over slabs of the target mode.
    pub fn mttkrp(&self, factors: &[Mat], mode: usize) -> Mat {
        assert_eq!(factors.len(), self.nmodes(), "one factor per mode");
        let rank = factors[mode].cols();
        let nmodes = self.nmodes();
        let mut out = Mat::zeros(self.shape[mode], rank);

        let out_rows: Vec<(usize, Vec<f64>)> = (0..self.shape[mode])
            .into_par_iter()
            .map(|i| {
                let mut row = vec![0.0f64; rank];
                let mut scratch = vec![0.0f64; rank];
                let mut c = vec![0usize; nmodes];
                c[mode] = i;
                // Iterate all combinations of the other modes.
                let others: Vec<usize> = (0..nmodes).filter(|&m| m != mode).collect();
                let total: usize = others.iter().map(|&m| self.shape[m]).product();
                for _ in 0..total {
                    let x = self.get(&c);
                    if x != 0.0 {
                        scratch.fill(x);
                        for &m in &others {
                            let frow = factors[m].row(c[m]);
                            for (s, &f) in scratch.iter_mut().zip(frow) {
                                *s *= f;
                            }
                        }
                        for (r, &s) in row.iter_mut().zip(&scratch) {
                            *r += s;
                        }
                    }
                    // Odometer over the other modes, last fastest.
                    for &m in others.iter().rev() {
                        c[m] += 1;
                        if c[m] < self.shape[m] {
                            break;
                        }
                        c[m] = 0;
                    }
                }
                (i, row)
            })
            .collect();
        for (i, row) in out_rows {
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_last_mode_fastest() {
        let t = DenseTensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 1]), 1);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
    }

    #[test]
    fn from_fn_visits_every_cell_once() {
        let t = DenseTensor::from_fn(vec![2, 2], |c| (c[0] * 2 + c[1]) as f64);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = DenseTensor::zeros(vec![3, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.get(&[1, 2]), 7.5);
        assert_eq!(t.get(&[2, 1]), 0.0);
    }

    #[test]
    fn norm_sq_counts_all_cells() {
        let t = DenseTensor::from_fn(vec![2, 2], |_| 2.0);
        assert_eq!(t.norm_sq(), 16.0);
    }

    #[test]
    fn dense_mttkrp_matches_manual_3mode() {
        // X[i,j,k], factors B (J x R), C (K x R):
        // M[i,r] = sum_{j,k} X[i,j,k] * B[j,r] * C[k,r].
        let shape = vec![2, 3, 2];
        let t = DenseTensor::from_fn(shape.clone(), |c| (c[0] + 2 * c[1] + 3 * c[2] + 1) as f64);
        let r = 2;
        let factors: Vec<Mat> =
            shape.iter().map(|&d| Mat::from_fn(d, r, |i, j| (i + j + 1) as f64 * 0.5)).collect();
        let m = t.mttkrp(&factors, 0);
        for i in 0..2 {
            for rr in 0..r {
                let mut want = 0.0;
                for j in 0..3 {
                    for k in 0..2 {
                        want += t.get(&[i, j, k]) * factors[1][(j, rr)] * factors[2][(k, rr)];
                    }
                }
                assert!((m[(i, rr)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dense_mttkrp_mode1_matches_manual() {
        let shape = vec![3, 2, 2];
        let t = DenseTensor::from_fn(shape.clone(), |c| (c[0] * 4 + c[1] * 2 + c[2]) as f64);
        let factors: Vec<Mat> =
            shape.iter().map(|&d| Mat::from_fn(d, 3, |i, j| ((i * 3 + j) % 5) as f64)).collect();
        let m = t.mttkrp(&factors, 1);
        for j in 0..2 {
            for rr in 0..3 {
                let mut want = 0.0;
                for i in 0..3 {
                    for k in 0..2 {
                        want += t.get(&[i, j, k]) * factors[0][(i, rr)] * factors[2][(k, rr)];
                    }
                }
                assert!((m[(j, rr)] - want).abs() < 1e-12);
            }
        }
    }
}
