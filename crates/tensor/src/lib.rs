//! # cstf-tensor
//!
//! Tensor types for cSTF-rs: an N-mode sparse coordinate tensor (the
//! interchange format all compressed formats compile from), a dense tensor
//! (for the paper's DenseTF preliminary study, Fig. 1), the Kruskal/CP model
//! with efficient fit computation, and FROSTT `.tns` I/O.
//!
//! ```
//! use cstf_tensor::{SparseTensor, Ktensor};
//! use cstf_linalg::Mat;
//!
//! // X is the full rank-1 tensor [1,2] o [1,2] o [1,2]: X[i,j,k] = 2^(i+j+k).
//! let mut idx = vec![Vec::new(), Vec::new(), Vec::new()];
//! let mut vals = Vec::new();
//! for i in 0..2u32 {
//!     for j in 0..2u32 {
//!         for k in 0..2u32 {
//!             idx[0].push(i); idx[1].push(j); idx[2].push(k);
//!             vals.push(f64::from(1 << (i + j + k)));
//!         }
//!     }
//! }
//! let x = SparseTensor::new(vec![2, 2, 2], idx, vals);
//! let model = Ktensor::from_factors(vec![
//!     Mat::from_vec(2, 1, vec![1.0, 2.0]),
//!     Mat::from_vec(2, 1, vec![1.0, 2.0]),
//!     Mat::from_vec(2, 1, vec![1.0, 2.0]),
//! ]);
//! assert!((model.fit(&x) - 1.0).abs() < 1e-8); // exact rank-1 reconstruction
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod io;
pub mod kruskal;
pub mod sparse;
pub mod stream;

pub use dense::DenseTensor;
pub use io::{read_tns, read_tns_file, read_tns_sized, write_tns, write_tns_file, TnsError};
pub use kruskal::Ktensor;
pub use sparse::SparseTensor;
pub use stream::{
    balanced_ranges_from_counts, read_tns_tile, read_tns_tiles, read_tns_tiles_file, scan_tns,
    TnsScan,
};
