//! The Kruskal (CP) model: a rank-`R` sum of outer products.
//!
//! `X ≈ [lambda; H^(1), ..., H^(N)]` where each `H^(n)` is an `I_n x R`
//! factor matrix and `lambda` carries the per-component weights produced by
//! the normalization step (Algorithm 1, line 11).

use rayon::prelude::*;

use cstf_linalg::{gram, hadamard_in_place, Mat};

use crate::sparse::SparseTensor;

/// A CP decomposition: per-mode factor matrices plus component weights.
#[derive(Clone, Debug)]
pub struct Ktensor {
    /// One `I_n x R` factor matrix per mode.
    pub factors: Vec<Mat>,
    /// Per-component weights, length `R`.
    pub lambda: Vec<f64>,
}

impl Ktensor {
    /// Builds a model, checking that all factors share one rank.
    ///
    /// # Panics
    /// Panics if ranks disagree or `lambda` has the wrong length.
    pub fn new(factors: Vec<Mat>, lambda: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "at least one factor required");
        let r = factors[0].cols();
        assert!(factors.iter().all(|f| f.cols() == r), "all factors must share one rank");
        assert_eq!(lambda.len(), r, "lambda length must equal rank");
        Self { factors, lambda }
    }

    /// A model with unit weights.
    pub fn from_factors(factors: Vec<Mat>) -> Self {
        let r = factors[0].cols();
        Self::new(factors, vec![1.0; r])
    }

    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.factors[0].cols()
    }

    /// Number of modes.
    pub fn nmodes(&self) -> usize {
        self.factors.len()
    }

    /// Shape of the reconstructed tensor.
    pub fn shape(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Model value at one coordinate:
    /// `sum_r lambda_r * prod_n H^(n)[i_n, r]`.
    pub fn value_at(&self, coord: &[u32]) -> f64 {
        debug_assert_eq!(coord.len(), self.nmodes());
        let r = self.rank();
        let mut acc = 0.0;
        for rr in 0..r {
            let mut p = self.lambda[rr];
            for (m, &c) in coord.iter().enumerate() {
                p *= self.factors[m][(c as usize, rr)];
            }
            acc += p;
        }
        acc
    }

    /// Squared Frobenius norm of the reconstructed tensor, computed in
    /// `O(sum_n I_n R^2)` via `lambda^T (hadamard of all Grams) lambda` —
    /// no reconstruction needed.
    pub fn norm_sq(&self) -> f64 {
        let r = self.rank();
        let mut had = Mat::full(r, r, 1.0);
        for f in &self.factors {
            let g = gram::gram(f);
            hadamard_in_place(&mut had, &g);
        }
        let mut acc = 0.0;
        for i in 0..r {
            for j in 0..r {
                acc += self.lambda[i] * had[(i, j)] * self.lambda[j];
            }
        }
        acc
    }

    /// Inner product `<X, model>` against a sparse tensor, in `O(nnz * R)`.
    pub fn inner_with(&self, x: &SparseTensor) -> f64 {
        assert_eq!(x.shape(), self.shape().as_slice(), "tensor/model shape mismatch");
        let nnz = x.nnz();
        let nmodes = self.nmodes();
        let r = self.rank();
        let body = |k: usize| -> f64 {
            let mut acc = 0.0;
            for rr in 0..r {
                let mut p = self.lambda[rr];
                for m in 0..nmodes {
                    p *= self.factors[m][(x.mode_indices(m)[k] as usize, rr)];
                }
                acc += p;
            }
            acc * x.values()[k]
        };
        if nnz >= 16 * 1024 {
            (0..nnz).into_par_iter().map(body).sum()
        } else {
            (0..nnz).map(body).sum()
        }
    }

    /// Squared residual `||X - model||_F^2` against a sparse tensor, using
    /// the expansion `||X||^2 - 2 <X, model> + ||model||^2`.
    ///
    /// The returned value is clamped at zero to absorb floating-point
    /// cancellation when the fit is nearly exact.
    pub fn residual_sq(&self, x: &SparseTensor) -> f64 {
        let res = x.norm_sq() - 2.0 * self.inner_with(x) + self.norm_sq();
        res.max(0.0)
    }

    /// The standard CP *fit* score: `1 - ||X - model|| / ||X||`.
    /// A fit of 1 is a perfect reconstruction.
    pub fn fit(&self, x: &SparseTensor) -> f64 {
        let xnorm = x.norm_sq().sqrt();
        if xnorm == 0.0 {
            return if self.norm_sq() == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - self.residual_sq(x).sqrt() / xnorm
    }

    /// Folds `lambda` back into one mode's factor (used before comparing
    /// factors against ground truth, or when handing factors to algorithms
    /// that assume unit weights).
    pub fn absorb_lambda_into(&mut self, mode: usize) {
        let r = self.rank();
        let f = &mut self.factors[mode];
        for i in 0..f.rows() {
            let row = f.row_mut(i);
            for (v, &l) in row.iter_mut().zip(&self.lambda) {
                *v *= l;
            }
        }
        self.lambda = vec![1.0; r];
    }
}

impl cstf_telemetry::MemoryFootprint for Ktensor {
    fn footprint(&self) -> cstf_telemetry::Footprint {
        let mut fp = cstf_telemetry::Footprint::new();
        let spine = (self.factors.capacity() * std::mem::size_of::<Mat>()) as u64;
        fp.add("factors.spine", spine);
        for f in &self.factors {
            fp.add("factors.data", cstf_telemetry::MemoryFootprint::heap_bytes(f));
        }
        fp.add("lambda", cstf_telemetry::vec_heap_bytes(&self.lambda));
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rank-1 3-mode model with known closed forms.
    fn rank1() -> Ktensor {
        let a = Mat::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Mat::from_vec(3, 1, vec![1.0, 0.0, 3.0]);
        let c = Mat::from_vec(2, 1, vec![2.0, 1.0]);
        Ktensor::from_factors(vec![a, b, c])
    }

    #[test]
    fn footprint_counts_spine_factors_and_lambda() {
        use cstf_telemetry::MemoryFootprint;
        let m = rank1();
        let spine = (m.factors.capacity() * std::mem::size_of::<Mat>()) as u64;
        let data: u64 = m.factors.iter().map(|f| std::mem::size_of_val(f.as_slice()) as u64).sum();
        let lambda = (m.lambda.capacity() * std::mem::size_of::<f64>()) as u64;
        // from_vec buffers have capacity == len, so data bytes are exact here.
        assert_eq!(m.footprint().get("factors.spine"), spine);
        assert!(m.footprint().get("factors.data") >= data);
        assert_eq!(
            m.heap_bytes(),
            m.footprint().get("factors.spine") + m.footprint().get("factors.data") + lambda
        );
    }

    #[test]
    fn value_at_is_outer_product() {
        let m = rank1();
        assert_eq!(m.value_at(&[1, 2, 0]), 2.0 * 3.0 * 2.0);
        assert_eq!(m.value_at(&[0, 1, 1]), 0.0);
    }

    #[test]
    fn norm_sq_matches_explicit_enumeration() {
        let m = rank1();
        let mut explicit = 0.0;
        for i in 0..2u32 {
            for j in 0..3u32 {
                for k in 0..2u32 {
                    let v = m.value_at(&[i, j, k]);
                    explicit += v * v;
                }
            }
        }
        assert!((m.norm_sq() - explicit).abs() < 1e-10);
    }

    #[test]
    fn lambda_scales_quadratically_in_norm() {
        let mut m = rank1();
        let base = m.norm_sq();
        m.lambda = vec![3.0];
        assert!((m.norm_sq() - 9.0 * base).abs() < 1e-9);
    }

    #[test]
    fn inner_with_matches_pointwise() {
        let m = rank1();
        let x = SparseTensor::new(
            vec![2, 3, 2],
            vec![vec![0, 1], vec![0, 2], vec![0, 1]],
            vec![2.0, -1.0],
        );
        let want = 2.0 * m.value_at(&[0, 0, 0]) - m.value_at(&[1, 2, 1]);
        assert!((m.inner_with(&x) - want).abs() < 1e-12);
    }

    #[test]
    fn perfect_model_has_fit_one() {
        // Build X exactly from the model's nonzero pattern.
        let m = rank1();
        let mut idx = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut vals = Vec::new();
        for i in 0..2u32 {
            for j in 0..3u32 {
                for k in 0..2u32 {
                    let v = m.value_at(&[i, j, k]);
                    if v != 0.0 {
                        idx[0].push(i);
                        idx[1].push(j);
                        idx[2].push(k);
                        vals.push(v);
                    }
                }
            }
        }
        let x = SparseTensor::new(vec![2, 3, 2], idx, vals);
        assert!((m.fit(&x) - 1.0).abs() < 1e-7);
        assert!(m.residual_sq(&x) < 1e-9);
    }

    #[test]
    fn absorb_lambda_preserves_model_values() {
        let mut m = rank1();
        m.lambda = vec![4.0];
        let before = m.value_at(&[1, 2, 1]);
        m.absorb_lambda_into(0);
        assert_eq!(m.lambda, vec![1.0]);
        assert!((m.value_at(&[1, 2, 1]) - before).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share one rank")]
    fn mismatched_ranks_rejected() {
        Ktensor::from_factors(vec![Mat::zeros(2, 2), Mat::zeros(2, 3)]);
    }
}
