//! FROSTT `.tns` text I/O.
//!
//! The FROSTT repository (Smith et al., the paper's data source, Table 2)
//! distributes sparse tensors as whitespace-separated text: one nonzero per
//! line, `N` 1-based coordinates followed by the value. Comment lines start
//! with `#`. This module reads and writes that format so real FROSTT dumps
//! can replace the synthetic catalog.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::sparse::SparseTensor;

/// Errors from `.tns` parsing.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The file contained no nonzeros.
    Empty,
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            TnsError::Empty => write!(f, "tensor file contains no nonzeros"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads a `.tns` tensor from any reader. The shape is inferred as the
/// per-mode maximum coordinate.
pub fn read_tns<R: Read>(reader: R) -> Result<SparseTensor, TnsError> {
    let mut indices: Vec<Vec<u32>> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut line_buf = String::new();
    let mut br = BufReader::new(reader);
    let mut lineno = 0usize;

    loop {
        line_buf.clear();
        if br.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let toks: Vec<&str> = fields.by_ref().collect();
        if toks.len() < 2 {
            return Err(TnsError::Parse {
                line: lineno,
                message: "expected at least one coordinate and a value".into(),
            });
        }
        let nmodes = toks.len() - 1;
        if indices.is_empty() {
            indices = vec![Vec::new(); nmodes];
        } else if indices.len() != nmodes {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected {} coordinates, found {nmodes}", indices.len()),
            });
        }
        for (m, tok) in toks[..nmodes].iter().enumerate() {
            let c: u64 = tok.parse().map_err(|_| TnsError::Parse {
                line: lineno,
                message: format!("bad coordinate {tok:?}"),
            })?;
            if c == 0 {
                return Err(TnsError::Parse {
                    line: lineno,
                    message: "coordinates are 1-based; found 0".into(),
                });
            }
            // Coordinates are stored as u32; a silent `as` cast here would
            // wrap huge indices onto other rows instead of failing.
            if c - 1 > u64::from(u32::MAX) {
                return Err(TnsError::Parse {
                    line: lineno,
                    message: format!("coordinate {c} exceeds the supported maximum {}", u32::MAX),
                });
            }
            indices[m].push((c - 1) as u32);
        }
        let v: f64 = toks[nmodes].parse().map_err(|_| TnsError::Parse {
            line: lineno,
            message: format!("bad value {:?}", toks[nmodes]),
        })?;
        if !v.is_finite() {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("non-finite value {:?}", toks[nmodes]),
            });
        }
        values.push(v);
    }

    if values.is_empty() {
        return Err(TnsError::Empty);
    }
    let shape: Vec<usize> =
        indices.iter().map(|idx| idx.iter().copied().max().unwrap_or(0) as usize + 1).collect();
    SparseTensor::try_new(shape, indices, values)
        .map_err(|message| TnsError::Parse { line: lineno, message })
}

/// Reads a `.tns` tensor from a file path.
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<SparseTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Writes a tensor in `.tns` format (1-based coordinates).
pub fn write_tns<W: Write>(tensor: &SparseTensor, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for k in 0..tensor.nnz() {
        for m in 0..tensor.nmodes() {
            write!(w, "{} ", tensor.mode_indices(m)[k] + 1)?;
        }
        writeln!(w, "{}", tensor.values()[k])?;
    }
    w.flush()
}

/// Writes a tensor to a `.tns` file.
pub fn write_tns_file(tensor: &SparseTensor, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let text = "# comment\n1 1 1 2.5\n3 2 1 -1.0\n\n2 4 2 0.5\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.shape(), &[3, 4, 2]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[0, 0, 0]), 2.5);
        assert_eq!(t.get(&[2, 1, 0]), -1.0);
        assert_eq!(t.get(&[1, 3, 1]), 0.5);
    }

    #[test]
    fn roundtrip_preserves_tensor() {
        let t = SparseTensor::new(
            vec![4, 2, 3],
            vec![vec![0, 3, 1], vec![1, 0, 1], vec![2, 2, 0]],
            vec![1.5, 2.0, -0.25],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        for k in 0..t.nnz() {
            assert_eq!(back.get(&t.coord(k)), t.values()[k]);
        }
    }

    #[test]
    fn rejects_zero_based_coordinate() {
        let err = read_tns("0 1 3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = read_tns("1 1 1 2.0\n1 1 3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(read_tns("# only comments\n".as_bytes()), Err(TnsError::Empty)));
    }

    #[test]
    fn rejects_bad_value() {
        let err = read_tns("1 1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { .. }));
    }

    #[test]
    fn scientific_notation_values_accepted() {
        let t = read_tns("2 2 1.5e-3\n".as_bytes()).unwrap();
        assert!((t.get(&[1, 1]) - 1.5e-3).abs() < 1e-18);
    }

    #[test]
    fn rejects_non_finite_values() {
        for text in ["1 1 NaN\n", "1 1 inf\n", "2 2 -inf\n"] {
            let err = read_tns(text.as_bytes()).unwrap_err();
            match err {
                TnsError::Parse { message, .. } => {
                    assert!(message.contains("non-finite"), "{text:?}: {message}");
                }
                other => panic!("{text:?}: expected parse error, got {other:?}"),
            }
        }
    }
}
