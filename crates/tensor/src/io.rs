//! FROSTT `.tns` text I/O.
//!
//! The FROSTT repository (Smith et al., the paper's data source, Table 2)
//! distributes sparse tensors as whitespace-separated text: one nonzero per
//! line, `N` 1-based coordinates followed by the value. Comment lines start
//! with `#`. This module reads and writes that format so real FROSTT dumps
//! can replace the synthetic catalog.
//!
//! Parsing folds the per-mode shape maximum into the parse loop (no
//! post-parse re-scan of the index vectors) and, when the byte length of
//! the input is known ([`read_tns_sized`], used by [`read_tns_file`]),
//! pre-sizes the index/value vectors from a byte-length heuristic so large
//! dumps load without the doubling-reallocation cascade. The out-of-core
//! path lives in [`crate::stream`] and shares the line parser below, so
//! streamed and in-core parses accept and reject exactly the same inputs.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::sparse::SparseTensor;

/// Errors from `.tns` parsing.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The file contained no nonzeros.
    Empty,
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            TnsError::Empty => write!(f, "tensor file contains no nonzeros"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Parses one `.tns` line into 0-based coordinates (written into `coords`)
/// and the value. Returns `Ok(None)` for blank and comment lines.
///
/// This is the single validation point shared by [`read_tns`] and the
/// streaming passes in [`crate::stream`]: any input one of them accepts or
/// rejects, all of them do, with identical messages.
pub(crate) fn parse_tns_line(
    raw: &str,
    lineno: usize,
    expected_modes: Option<usize>,
    coords: &mut Vec<u32>,
) -> Result<Option<f64>, TnsError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    if toks.len() < 2 {
        return Err(TnsError::Parse {
            line: lineno,
            message: "expected at least one coordinate and a value".into(),
        });
    }
    let nmodes = toks.len() - 1;
    if let Some(expected) = expected_modes {
        if expected != nmodes {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("expected {expected} coordinates, found {nmodes}"),
            });
        }
    }
    coords.clear();
    for tok in &toks[..nmodes] {
        let c: u64 = tok.parse().map_err(|_| TnsError::Parse {
            line: lineno,
            message: format!("bad coordinate {tok:?}"),
        })?;
        if c == 0 {
            return Err(TnsError::Parse {
                line: lineno,
                message: "coordinates are 1-based; found 0".into(),
            });
        }
        // Coordinates are stored as u32; a silent `as` cast here would
        // wrap huge indices onto other rows instead of failing.
        if c - 1 > u64::from(u32::MAX) {
            return Err(TnsError::Parse {
                line: lineno,
                message: format!("coordinate {c} exceeds the supported maximum {}", u32::MAX),
            });
        }
        coords.push((c - 1) as u32);
    }
    let v: f64 = toks[nmodes].parse().map_err(|_| TnsError::Parse {
        line: lineno,
        message: format!("bad value {:?}", toks[nmodes]),
    })?;
    if !v.is_finite() {
        return Err(TnsError::Parse {
            line: lineno,
            message: format!("non-finite value {:?}", toks[nmodes]),
        });
    }
    Ok(Some(v))
}

/// Estimated nonzero-line count for pre-sizing: total bytes divided by the
/// byte length of the first data line (a representative sample — `.tns`
/// lines of one tensor have near-uniform width), plus one for the division
/// floor.
fn estimated_lines(byte_len: u64, first_line_bytes: usize) -> usize {
    usize::try_from(byte_len / first_line_bytes.max(1) as u64).unwrap_or(usize::MAX / 2) + 1
}

/// Reads a `.tns` tensor from any reader. The shape is inferred as the
/// per-mode maximum coordinate.
pub fn read_tns<R: Read>(reader: R) -> Result<SparseTensor, TnsError> {
    read_tns_sized(reader, None)
}

/// Like [`read_tns`], but `byte_len` (the total input length in bytes, when
/// known) pre-sizes the index and value vectors so parsing avoids the
/// doubling-reallocation cascade — the peak-allocation win is pinned by the
/// counting-allocator test in `tests/stream_tns.rs`.
pub fn read_tns_sized<R: Read>(reader: R, byte_len: Option<u64>) -> Result<SparseTensor, TnsError> {
    let mut indices: Vec<Vec<u32>> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut shape_max: Vec<u32> = Vec::new();
    let mut coords: Vec<u32> = Vec::new();
    let mut line_buf = String::new();
    let mut br = BufReader::new(reader);
    let mut lineno = 0usize;

    loop {
        line_buf.clear();
        if br.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let expected = if indices.is_empty() { None } else { Some(indices.len()) };
        let Some(v) = parse_tns_line(&line_buf, lineno, expected, &mut coords)? else {
            continue;
        };
        if indices.is_empty() {
            let nmodes = coords.len();
            let est = byte_len.map_or(0, |b| estimated_lines(b, line_buf.len()));
            indices = (0..nmodes).map(|_| Vec::with_capacity(est)).collect();
            values = Vec::with_capacity(est);
            shape_max = vec![0u32; nmodes];
        }
        for (m, &c) in coords.iter().enumerate() {
            if c > shape_max[m] {
                shape_max[m] = c;
            }
            indices[m].push(c);
        }
        values.push(v);
    }

    if values.is_empty() {
        return Err(TnsError::Empty);
    }
    let shape: Vec<usize> = shape_max.iter().map(|&c| c as usize + 1).collect();
    SparseTensor::try_new(shape, indices, values)
        .map_err(|message| TnsError::Parse { line: lineno, message })
}

/// Reads a `.tns` tensor from a file path, pre-sizing from the file length.
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<SparseTensor, TnsError> {
    let file = std::fs::File::open(path)?;
    let byte_len = file.metadata().ok().map(|m| m.len());
    read_tns_sized(file, byte_len)
}

/// Writes a tensor in `.tns` format (1-based coordinates).
///
/// Values are written with Rust's default `f64` formatting — the shortest
/// decimal string that round-trips to the same bits — so a
/// write-then-read cycle recovers every finite value bit-exactly (pinned
/// by the extreme-value proptest in `tests/stream_tns.rs`).
pub fn write_tns<W: Write>(tensor: &SparseTensor, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for k in 0..tensor.nnz() {
        for m in 0..tensor.nmodes() {
            write!(w, "{} ", tensor.mode_indices(m)[k] + 1)?;
        }
        writeln!(w, "{}", tensor.values()[k])?;
    }
    w.flush()
}

/// Writes a tensor to a `.tns` file.
pub fn write_tns_file(tensor: &SparseTensor, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let text = "# comment\n1 1 1 2.5\n3 2 1 -1.0\n\n2 4 2 0.5\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.shape(), &[3, 4, 2]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[0, 0, 0]), 2.5);
        assert_eq!(t.get(&[2, 1, 0]), -1.0);
        assert_eq!(t.get(&[1, 3, 1]), 0.5);
    }

    #[test]
    fn roundtrip_preserves_tensor() {
        let t = SparseTensor::new(
            vec![4, 2, 3],
            vec![vec![0, 3, 1], vec![1, 0, 1], vec![2, 2, 0]],
            vec![1.5, 2.0, -0.25],
        );
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), t.nnz());
        for k in 0..t.nnz() {
            assert_eq!(back.get(&t.coord(k)), t.values()[k]);
        }
    }

    #[test]
    fn sized_parse_equals_unsized_parse() {
        let text = "1 1 1 2.5\n3 2 1 -1.0\n2 4 2 0.5\n";
        let a = read_tns(text.as_bytes()).unwrap();
        let b = read_tns_sized(text.as_bytes(), Some(text.len() as u64)).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.nnz(), b.nnz());
        for k in 0..a.nnz() {
            assert_eq!(a.coord(k), b.coord(k));
            assert_eq!(a.values()[k].to_bits(), b.values()[k].to_bits());
        }
    }

    #[test]
    fn rejects_zero_based_coordinate() {
        let err = read_tns("0 1 3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = read_tns("1 1 1 2.0\n1 1 3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(read_tns("# only comments\n".as_bytes()), Err(TnsError::Empty)));
    }

    #[test]
    fn rejects_bad_value() {
        let err = read_tns("1 1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse { .. }));
    }

    #[test]
    fn scientific_notation_values_accepted() {
        let t = read_tns("2 2 1.5e-3\n".as_bytes()).unwrap();
        assert!((t.get(&[1, 1]) - 1.5e-3).abs() < 1e-18);
    }

    #[test]
    fn rejects_non_finite_values() {
        for text in ["1 1 NaN\n", "1 1 inf\n", "2 2 -inf\n"] {
            let err = read_tns(text.as_bytes()).unwrap_err();
            match err {
                TnsError::Parse { message, .. } => {
                    assert!(message.contains("non-finite"), "{text:?}: {message}");
                }
                other => panic!("{text:?}: expected parse error, got {other:?}"),
            }
        }
    }
}
