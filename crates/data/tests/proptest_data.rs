//! Property-based tests for the workload generators.

use cstf_data::{by_name, table2, SynthSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation always respects the spec's shape, produces distinct,
    /// in-range coordinates, strictly positive values, and is seed-stable.
    #[test]
    fn generator_invariants(
        d0 in 3usize..20,
        d1 in 3usize..20,
        d2 in 3usize..20,
        nnz in 1usize..400,
        seed in any::<u64>(),
    ) {
        let spec = SynthSpec::new(vec![d0, d1, d2], nnz, seed);
        let t = cstf_data::generate(&spec);
        prop_assert_eq!(t.shape(), &[d0, d1, d2][..]);
        prop_assert!(t.nnz() <= nnz);
        prop_assert!(t.values().iter().all(|&v| v > 0.0 && v.is_finite()));
        let mut seen = std::collections::HashSet::new();
        for k in 0..t.nnz() {
            let c = t.coord(k);
            for (m, &ci) in c.iter().enumerate() {
                prop_assert!((ci as usize) < t.shape()[m]);
            }
            prop_assert!(seen.insert(c), "duplicate coordinate");
        }
        // Seed-stable.
        let t2 = cstf_data::generate(&spec);
        prop_assert_eq!(t.values(), t2.values());
    }

    /// Catalog scaling: any positive target yields a valid spec whose
    /// nnz is feasible for its shape.
    #[test]
    fn catalog_scaling_is_always_feasible(idx in 0usize..10, target in 100usize..500_000) {
        let entry = &table2()[idx];
        let spec = entry.scaled_spec(target, 1);
        let cells: f64 = spec.shape.iter().map(|&d| d as f64).product();
        prop_assert!(spec.nnz as f64 <= cells, "{}: infeasible nnz", entry.name);
        prop_assert!(spec.shape.iter().all(|&d| d >= 2));
        prop_assert_eq!(spec.shape.len(), entry.paper_dims.len());
    }

    /// Bigger targets never shrink the scaled dimensions.
    #[test]
    fn scaling_is_monotone_in_target(idx in 0usize..10, t1 in 1_000usize..100_000, grow in 2usize..10) {
        let entry = &table2()[idx];
        let small = entry.scaled_spec(t1, 0);
        let large = entry.scaled_spec(t1 * grow, 0);
        for (a, b) in small.shape.iter().zip(&large.shape) {
            prop_assert!(b >= a, "{}: dim shrank {a} -> {b}", entry.name);
        }
        prop_assert!(large.nnz >= small.nnz);
    }
}

#[test]
fn catalog_lookup_is_case_insensitive() {
    assert!(by_name("flickr").is_some());
    assert!(by_name("FLICKR").is_some());
    assert!(by_name("Flickr").is_some());
}
