//! Synthetic sparse tensor generation.
//!
//! Workloads are drawn from a planted non-negative CP model: ground-truth
//! factors with controllable sparsity are sampled, `nnz` distinct
//! coordinates are drawn, and each kept coordinate carries the model value
//! plus optional noise. This gives every experiment a tensor that (a) has a
//! genuine low-rank non-negative structure for the factorization to find,
//! and (b) matches a prescribed shape/nnz budget, which is all the paper's
//! performance trends depend on.

use std::collections::HashSet;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use cstf_linalg::Mat;
use cstf_tensor::{Ktensor, SparseTensor};

/// Parameters of a planted-model tensor.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Mode dimensions.
    pub shape: Vec<usize>,
    /// Number of distinct nonzero coordinates to draw.
    pub nnz: usize,
    /// Rank of the planted ground-truth model.
    pub rank: usize,
    /// Relative noise amplitude added to each value (0 = exact low-rank).
    pub noise: f64,
    /// Fraction of ground-truth factor entries forced to zero (sparser
    /// factors give the tensor more structure).
    pub factor_sparsity: f64,
    /// RNG seed; every draw is deterministic given the spec.
    pub seed: u64,
}

impl SynthSpec {
    /// A reasonable default: mild noise, 30 % sparse factors.
    pub fn new(shape: Vec<usize>, nnz: usize, seed: u64) -> Self {
        Self { shape, nnz, rank: 8, noise: 0.05, factor_sparsity: 0.3, seed }
    }
}

/// Generates a tensor and returns it together with the planted model.
pub fn generate_with_truth(spec: &SynthSpec) -> (SparseTensor, Ktensor) {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let truth = random_nonneg_factors(&spec.shape, spec.rank, spec.factor_sparsity, &mut rng);

    let nmodes = spec.shape.len();
    let cells: f64 = spec.shape.iter().map(|&d| d as f64).product();
    let nnz = (spec.nnz as f64).min(cells) as usize;

    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(nnz * 2);
    let mut indices = vec![Vec::with_capacity(nnz); nmodes];
    let mut values = Vec::with_capacity(nnz);
    // Rejection-sample distinct coordinates. For dense regimes (nnz close
    // to the cell count) the cap above keeps this terminating; a draw
    // budget bounds the loop regardless.
    let mut attempts = 0usize;
    let max_attempts = nnz.saturating_mul(50).max(1024);
    while values.len() < nnz && attempts < max_attempts {
        attempts += 1;
        let coord: Vec<u32> = spec.shape.iter().map(|&d| rng.gen_range(0..d as u32)).collect();
        if !seen.insert(coord.clone()) {
            continue;
        }
        let mut v = truth.value_at(&coord);
        if spec.noise > 0.0 {
            v += spec.noise * rng.gen_range(0.0..1.0);
        }
        // Planted non-negative model: keep values strictly positive so the
        // tensor is a valid non-negative dataset.
        v = v.max(1e-6);
        for (m, &c) in coord.iter().enumerate() {
            indices[m].push(c);
        }
        values.push(v);
    }

    (SparseTensor::new(spec.shape.clone(), indices, values), truth)
}

/// Generates just the tensor.
pub fn generate(spec: &SynthSpec) -> SparseTensor {
    generate_with_truth(spec).0
}

/// Random non-negative factor matrices with the given zero fraction, wrapped
/// as a unit-weight [`Ktensor`].
pub fn random_nonneg_factors(
    shape: &[usize],
    rank: usize,
    sparsity: f64,
    rng: &mut impl Rng,
) -> Ktensor {
    let factors: Vec<Mat> = shape
        .iter()
        .map(|&d| {
            Mat::from_fn(d, rank, |_, _| {
                if rng.gen_range(0.0..1.0) < sparsity {
                    0.0
                } else {
                    rng.gen_range(0.1..1.0)
                }
            })
        })
        .collect();
    Ktensor::from_factors(factors)
}

/// Random dense strictly-positive initial factors for a factorization run
/// (the standard random-restart initialization).
pub fn random_init(shape: &[usize], rank: usize, seed: u64) -> Vec<Mat> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF00D);
    shape.iter().map(|&d| Mat::from_fn(d, rank, |_, _| rng.gen_range(0.05..1.0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SynthSpec::new(vec![20, 30, 15], 500, 42);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.values(), b.values());
        for m in 0..3 {
            assert_eq!(a.mode_indices(m), b.mode_indices(m));
        }
    }

    #[test]
    fn seeds_produce_different_tensors() {
        let s1 = SynthSpec::new(vec![20, 30, 15], 500, 1);
        let s2 = SynthSpec { seed: 2, ..s1.clone() };
        assert_ne!(generate(&s1).values(), generate(&s2).values());
    }

    #[test]
    fn coordinates_are_distinct() {
        let spec = SynthSpec::new(vec![10, 10, 10], 400, 3);
        let t = generate(&spec);
        let mut seen = HashSet::new();
        for k in 0..t.nnz() {
            assert!(seen.insert(t.coord(k)), "duplicate coordinate at {k}");
        }
    }

    #[test]
    fn values_are_strictly_positive() {
        let spec = SynthSpec::new(vec![25, 25, 25], 1_000, 4);
        let t = generate(&spec);
        assert!(t.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn requested_nnz_is_honored_when_feasible() {
        let spec = SynthSpec::new(vec![50, 50, 50], 2_000, 5);
        assert_eq!(generate(&spec).nnz(), 2_000);
    }

    #[test]
    fn nnz_capped_at_cell_count() {
        let spec = SynthSpec::new(vec![3, 3], 1_000, 6);
        let t = generate(&spec);
        assert!(t.nnz() <= 9);
    }

    #[test]
    fn noiseless_tensor_is_exactly_low_rank() {
        let spec = SynthSpec {
            shape: vec![12, 10, 8],
            nnz: 300,
            rank: 4,
            noise: 0.0,
            factor_sparsity: 0.0,
            seed: 7,
        };
        let (t, truth) = generate_with_truth(&spec);
        // Every stored value matches the planted model (clamped at 1e-6).
        for k in 0..t.nnz() {
            let c = t.coord(k);
            let want = truth.value_at(&c).max(1e-6);
            assert!((t.values()[k] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn random_init_is_positive_and_seeded() {
        let f1 = random_init(&[10, 12], 4, 9);
        let f2 = random_init(&[10, 12], 4, 9);
        assert_eq!(f1[0].as_slice(), f2[0].as_slice());
        assert!(f1.iter().all(|m| m.as_slice().iter().all(|&v| v > 0.0)));
    }
}
