//! # cstf-data
//!
//! Workload generation for cSTF-rs: planted non-negative low-rank synthetic
//! tensors ([`synth`]) and the scaled Table 2 FROSTT catalog ([`catalog`]).
//! All generation is deterministic given a seed (ChaCha8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod synth;

pub use catalog::{by_name, dense_tf_shape, figure4_subset, table2, CatalogEntry, FactorSizeClass};
pub use synth::{generate, generate_with_truth, random_init, random_nonneg_factors, SynthSpec};
