//! The Table 2 dataset catalog.
//!
//! The paper evaluates on ten FROSTT tensors (NIPS … Amazon, up to 1.7 B
//! nonzeros). Those dumps are multi-gigabyte downloads; per DESIGN.md §1 the
//! catalog instead generates *scaled analogues*: every mode length and the
//! nonzero count are multiplied by the same factor `s = target_nnz /
//! paper_nnz`, which exactly preserves the structural trait the paper's
//! trends depend on — the ratio of total factor-matrix rows (`sum_n I_n`,
//! the UPDATE-phase workload) to nonzeros (the MTTKRP workload). Tensors
//! with long modes relative to nnz (Flickr, Delicious, NELL1) stay
//! update-bound; tensors with short modes (NIPS, Uber, Vast) stay
//! MTTKRP-bound.

use cstf_tensor::SparseTensor;

use crate::synth::{generate, SynthSpec};

/// Size class of a tensor's factor matrices, as grouped in the paper's
/// Figure 4 (small: NIPS; medium: Enron; large: Flickr/Delicious/Amazon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorSizeClass {
    /// Short modes — factor matrices of a few thousand rows.
    Small,
    /// Hundreds of thousands of rows.
    Medium,
    /// Millions to tens of millions of rows.
    Large,
}

/// One Table 2 dataset: paper-scale metadata plus scaled generation.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// FROSTT tensor name.
    pub name: &'static str,
    /// Paper-scale mode dimensions.
    pub paper_dims: &'static [u64],
    /// Paper-scale nonzero count.
    pub paper_nnz: u64,
    /// Figure 4 size class.
    pub class: FactorSizeClass,
}

impl CatalogEntry {
    /// Paper-scale density `nnz / prod(dims)`.
    pub fn paper_density(&self) -> f64 {
        let cells: f64 = self.paper_dims.iter().map(|&d| d as f64).product();
        self.paper_nnz as f64 / cells
    }

    /// Sum of mode lengths — proportional to the UPDATE-phase workload.
    pub fn paper_mode_sum(&self) -> u64 {
        self.paper_dims.iter().sum()
    }

    /// The update-vs-MTTKRP workload ratio `sum_n I_n / nnz` that the
    /// scaled analogue preserves.
    pub fn update_ratio(&self) -> f64 {
        self.paper_mode_sum() as f64 / self.paper_nnz as f64
    }

    /// The default scaled nonzero budget for a base budget `base`.
    ///
    /// Targets grow with the square root of the paper-scale nnz, compressing
    /// the paper's 560x nnz range (NIPS 3.1M → Amazon 1.7B) to ~24x so
    /// every tensor stays laptop-scale while the big tensors remain
    /// meaningfully bigger than the small ones.
    pub fn default_target_nnz(&self, base: usize) -> usize {
        let smallest = 3_101_609f64; // NIPS
        (base as f64 * (self.paper_nnz as f64 / smallest).sqrt()).round() as usize
    }

    /// Builds the scaled [`SynthSpec`] for a target nonzero budget.
    ///
    /// Every dimension is scaled by `target_nnz / paper_nnz`, floored at
    /// `min(paper_dim, 24)` so the paper's short modes (Uber's 24 slots,
    /// Chicago's 77 areas) survive scaling, and the requested nnz is capped
    /// so the coordinate space stays at most half full (keeps rejection
    /// sampling fast).
    pub fn scaled_spec(&self, target_nnz: usize, seed: u64) -> SynthSpec {
        let s = target_nnz as f64 / self.paper_nnz as f64;
        let shape: Vec<usize> = self
            .paper_dims
            .iter()
            .map(|&d| {
                let floor = (d as usize).clamp(2, 24);
                ((d as f64 * s).round() as usize).max(floor)
            })
            .collect();
        let cells: f64 = shape.iter().map(|&d| d as f64).product();
        let nnz = (target_nnz as f64).min(cells * 0.5).max(1.0) as usize;
        SynthSpec { shape, nnz, rank: 8, noise: 0.05, factor_sparsity: 0.3, seed }
    }

    /// Generates the scaled analogue tensor.
    pub fn generate_scaled(&self, target_nnz: usize, seed: u64) -> SparseTensor {
        generate(&self.scaled_spec(target_nnz, seed))
    }
}

/// The ten Table 2 tensors, ordered by nonzero count as in the paper.
pub fn table2() -> Vec<CatalogEntry> {
    use FactorSizeClass::*;
    vec![
        CatalogEntry {
            name: "NIPS",
            paper_dims: &[2_482, 2_862, 14_036, 17],
            paper_nnz: 3_101_609,
            class: Small,
        },
        CatalogEntry {
            name: "Uber",
            paper_dims: &[183, 24, 1_140, 1_717],
            paper_nnz: 3_309_490,
            class: Small,
        },
        CatalogEntry {
            name: "Chicago",
            paper_dims: &[6_186, 24, 77, 32],
            paper_nnz: 5_330_673,
            class: Small,
        },
        CatalogEntry {
            name: "Vast",
            paper_dims: &[165_427, 11_374, 2],
            paper_nnz: 26_021_945,
            class: Small,
        },
        CatalogEntry {
            name: "Enron",
            paper_dims: &[6_066, 5_699, 244_268, 1_176],
            paper_nnz: 54_202_099,
            class: Medium,
        },
        CatalogEntry {
            name: "NELL2",
            paper_dims: &[12_092, 9_184, 28_818],
            paper_nnz: 76_879_419,
            class: Medium,
        },
        CatalogEntry {
            name: "Flickr",
            paper_dims: &[319_686, 28_153_045, 1_607_191, 731],
            paper_nnz: 112_890_310,
            class: Large,
        },
        CatalogEntry {
            name: "Delicious",
            paper_dims: &[532_924, 17_262_471, 2_480_308, 1_443],
            paper_nnz: 140_126_181,
            class: Large,
        },
        CatalogEntry {
            name: "NELL1",
            paper_dims: &[2_902_330, 2_143_368, 25_495_389],
            paper_nnz: 143_599_552,
            class: Large,
        },
        CatalogEntry {
            name: "Amazon",
            paper_dims: &[4_821_207, 1_774_269, 1_805_187],
            paper_nnz: 1_741_809_018,
            class: Large,
        },
    ]
}

/// Looks up a catalog entry by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    table2().into_iter().find(|e| e.name.eq_ignore_ascii_case(name))
}

/// The Figure 4 subset: small (NIPS), medium (Enron), large (Flickr,
/// Delicious, Amazon).
pub fn figure4_subset() -> Vec<CatalogEntry> {
    ["NIPS", "Enron", "Flickr", "Delicious", "Amazon"]
        .iter()
        .map(|n| by_name(n).expect("catalog entry"))
        .collect()
}

/// The DenseTF study's synthetic dense shape (Fig. 1), scalable.
///
/// The paper uses `400 x 200 x 100 x 50`; `scale = 1.0` reproduces that,
/// smaller scales shrink every mode proportionally for quick runs.
pub fn dense_tf_shape(scale: f64) -> Vec<usize> {
    [400usize, 200, 100, 50].iter().map(|&d| ((d as f64 * scale).round() as usize).max(2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_tensors_in_nnz_order() {
        let t = table2();
        assert_eq!(t.len(), 10);
        assert!(t.windows(2).all(|w| w[0].paper_nnz <= w[1].paper_nnz));
        assert_eq!(t[0].name, "NIPS");
        assert_eq!(t[9].name, "Amazon");
    }

    #[test]
    fn paper_densities_match_table2_orders_of_magnitude() {
        // Table 2 lists e.g. NIPS 1.8e-6 (sic: 1.8e-06-ish), NELL1 9.1e-13.
        let nips = by_name("nips").unwrap();
        assert!((nips.paper_density().log10() - (-6.0)).abs() < 1.0);
        let nell1 = by_name("NELL1").unwrap();
        assert!((nell1.paper_density().log10() - (-13.0)).abs() < 1.0);
    }

    #[test]
    fn scaling_preserves_update_ratio_when_uncapped() {
        // For tensors where the density cap does not bind (nnz == target),
        // linear scaling preserves the update ratio closely. Dense-ish small
        // tensors (Uber, Chicago, Vast) hit the cap; for those only the
        // ordering test below applies.
        for e in table2() {
            let target = 100_000;
            let spec = e.scaled_spec(target, 0);
            if spec.nnz < target {
                continue; // density cap bound; ratio necessarily distorted
            }
            let scaled_sum: usize = spec.shape.iter().sum();
            let scaled_ratio = scaled_sum as f64 / spec.nnz as f64;
            let ratio = e.update_ratio();
            assert!(
                scaled_ratio / ratio < 3.0 && ratio / scaled_ratio < 3.0,
                "{}: paper ratio {ratio:.4}, scaled {scaled_ratio:.4}",
                e.name
            );
        }
    }

    #[test]
    fn scaled_mode_sums_keep_the_papers_size_classes_apart() {
        // The figure-level claim (§5.3): speedup tracks absolute factor-
        // matrix size. After scaling with the default per-tensor targets,
        // every long-mode tensor (Flickr, Delicious, NELL1) must keep a
        // larger total factor-row count than every Small-class tensor.
        let sums: Vec<(&str, FactorSizeClass, usize)> = table2()
            .iter()
            .map(|e| {
                let spec = e.scaled_spec(e.default_target_nnz(60_000), 0);
                (e.name, e.class, spec.shape.iter().sum::<usize>())
            })
            .collect();
        let max_small = sums
            .iter()
            .filter(|(_, c, _)| *c == FactorSizeClass::Small)
            .map(|&(_, _, s)| s)
            .max()
            .unwrap();
        for name in ["Flickr", "Delicious", "NELL1"] {
            let s = sums.iter().find(|(n, _, _)| *n == name).unwrap().2;
            assert!(s > max_small, "{name} mode sum {s} must exceed small-class max {max_small}");
        }
    }

    #[test]
    fn default_targets_grow_with_paper_nnz() {
        let t = table2();
        let targets: Vec<usize> = t.iter().map(|e| e.default_target_nnz(60_000)).collect();
        assert!(targets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(targets[0], 60_000); // NIPS is the base
                                        // Amazon compresses from 560x NIPS to ~24x.
        assert!(targets[9] < 30 * targets[0]);
    }

    #[test]
    fn long_mode_tensors_keep_higher_update_ratio_than_short() {
        let flickr = by_name("Flickr").unwrap().scaled_spec(100_000, 0);
        let nips = by_name("NIPS").unwrap().scaled_spec(100_000, 0);
        let r_flickr = flickr.shape.iter().sum::<usize>() as f64 / flickr.nnz as f64;
        let r_nips = nips.shape.iter().sum::<usize>() as f64 / nips.nnz as f64;
        assert!(r_flickr > 10.0 * r_nips, "flickr {r_flickr} vs nips {r_nips}");
    }

    #[test]
    fn generated_tensor_matches_spec() {
        let e = by_name("Chicago").unwrap();
        let t = e.generate_scaled(20_000, 1);
        assert_eq!(t.nmodes(), 4);
        assert!(t.nnz() > 0 && t.nnz() <= 20_000);
        assert!(t.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn figure4_subset_is_the_papers_five() {
        let names: Vec<&str> = figure4_subset().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["NIPS", "Enron", "Flickr", "Delicious", "Amazon"]);
    }

    #[test]
    fn dense_tf_shape_scales() {
        assert_eq!(dense_tf_shape(1.0), vec![400, 200, 100, 50]);
        assert_eq!(dense_tf_shape(0.1), vec![40, 20, 10, 5]);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("does-not-exist").is_none());
    }
}
