//! Table formatting and JSON result emission for the figure binaries.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Geometric mean of a slice of positive values (the paper's summary
/// statistic for speedups); 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a figure header with a separator line.
pub fn print_header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(40)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(40)));
}

/// Prints one aligned row of label + columns.
pub fn print_row(label: &str, cols: &[String]) {
    let mut out = std::io::stdout().lock();
    let _ = write!(out, "{label:<14}");
    for c in cols {
        let _ = write!(out, " {c:>12}");
    }
    let _ = writeln!(out);
}

/// Writes a serializable result set as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let body = serde_json::to_string_pretty(value).expect("serializable result");
    f.write_all(body.as_bytes())?;
    f.write_all(b"\n")?;
    eprintln!("[results written to {}]", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_the_value() {
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // gm(2, 8) = 4.
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_empty_is_zero() {
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
