//! The repo-level perf trajectory artifact: `BENCH_perf.json`.
//!
//! Each PR re-runs a small fixed benchmark suite and rewrites the file at
//! the repository root, so the history of modeled and measured time per
//! benchmark lives in version control alongside the code that produced it.
//! Counters come from the same zero-noise profiler the perf gate uses —
//! modeled time and the flop/byte/launch tallies are exactly reproducible,
//! while `measured_s` (host wall-clock of the kernel bodies) is advisory.

use serde::Serialize;

use crate::harness::RunResult;

/// Schema version of `BENCH_perf.json`. Bump on shape changes.
pub const PERF_TRAJECTORY_SCHEMA_VERSION: u64 = 1;

/// One benchmark's row in the trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct BenchPerfEntry {
    /// Stable benchmark id, e.g. `"nell2-cstf-a100-r16"`.
    pub name: String,
    /// Dataset the benchmark ran on.
    pub dataset: String,
    /// System preset name.
    pub system: String,
    /// Simulated device name.
    pub device: String,
    /// Factorization rank.
    pub rank: u64,
    /// Outer iterations measured.
    pub iters: u64,
    /// Modeled end-to-end seconds per outer iteration (deterministic).
    pub modeled_s_per_iter: f64,
    /// Measured host seconds per outer iteration (advisory, noisy).
    pub measured_s_per_iter: f64,
    /// Total kernel launches across the run (deterministic).
    pub launches: u64,
    /// Total flops tallied across the run (deterministic).
    pub flops: f64,
    /// Total logical bytes moved across the run (deterministic).
    pub bytes: f64,
}

impl BenchPerfEntry {
    /// Builds one row from a harness [`RunResult`].
    pub fn from_run(name: &str, dataset: &str, r: &RunResult) -> Self {
        let (launches, flops, bytes) =
            r.summary.phases.iter().fold((0u64, 0.0f64, 0.0f64), |(l, f, b), p| {
                (l + p.launches, f + p.flops, b + p.bytes)
            });
        Self {
            name: name.to_string(),
            dataset: dataset.to_string(),
            system: r.system.to_string(),
            device: r.device.clone(),
            rank: r.summary.rank as u64,
            iters: r.iters as u64,
            modeled_s_per_iter: r.per_iter_total(),
            measured_s_per_iter: r.per_iter_measured.total(),
            launches,
            flops,
            bytes,
        }
    }
}

/// The whole `BENCH_perf.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchPerf {
    /// [`PERF_TRAJECTORY_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// One row per benchmark, in suite order.
    pub entries: Vec<BenchPerfEntry>,
}

impl BenchPerf {
    /// Wraps a set of rows in the versioned envelope.
    pub fn new(entries: Vec<BenchPerfEntry>) -> Self {
        Self { schema_version: PERF_TRAJECTORY_SCHEMA_VERSION, entries }
    }

    /// Serializes with a trailing newline, ready to write verbatim.
    pub fn to_json_pretty(&self) -> String {
        let mut body = serde_json::to_string_pretty(self).expect("serializable trajectory");
        body.push('\n');
        body
    }

    /// Writes the artifact to `path` (conventionally `BENCH_perf.json` at
    /// the repository root).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_core::presets;
    use cstf_data::by_name;

    #[test]
    fn entry_totals_match_the_run_summary() {
        let x = by_name("NIPS").unwrap().generate_scaled(6_000, 1);
        let r = crate::run_preset(&presets::cstf_gpu(8, cstf_device::DeviceSpec::a100()), &x, 2);
        let e = BenchPerfEntry::from_run("nips-cstf-a100-r8", "nips", &r);
        assert_eq!(e.rank, 8);
        assert_eq!(e.iters, 2);
        assert!(e.launches > 0);
        assert!(e.flops > 0.0 && e.bytes > 0.0);
        assert!((e.modeled_s_per_iter - r.per_iter_total()).abs() < 1e-18);
    }

    #[test]
    fn document_serializes_with_schema_version() {
        let doc = BenchPerf::new(Vec::new());
        let v: serde_json::Value = serde_json::from_str(&doc.to_json_pretty()).unwrap();
        assert_eq!(v["schema_version"], PERF_TRAJECTORY_SCHEMA_VERSION);
        assert!(v["entries"].as_array().unwrap().is_empty());
    }

    #[test]
    fn identical_runs_produce_identical_deterministic_columns() {
        let x = by_name("Uber").unwrap().generate_scaled(5_000, 2);
        let preset = presets::cstf_gpu(16, cstf_device::DeviceSpec::h100());
        let a = BenchPerfEntry::from_run("u", "uber", &crate::run_preset(&preset, &x, 2));
        let b = BenchPerfEntry::from_run("u", "uber", &crate::run_preset(&preset, &x, 2));
        assert_eq!(a.launches, b.launches);
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.modeled_s_per_iter, b.modeled_s_per_iter);
    }
}
