//! **Executed** multi-GPU strong scaling: runs the real sharded AO-ADMM
//! loop on a [`cstf_device::DeviceGroup`] for 1/2/4/8 devices and reports
//! the metered group time (the slowest device bounds each iteration),
//! beside the closed-form projection of
//! [`cstf_core::multi_gpu::multi_gpu_iteration_time`].
//!
//! Two effects should be visible, matching the modeled curve:
//!
//! * the large tensor amortizes the collectives and scales well;
//! * the small tensor saturates early — per-device MTTKRP work shrinks
//!   while the factor all-gather and Gram all-reduce stay fixed, so
//!   efficiency degrades with the device count.
//!
//! A correctness column cross-checks the tentpole property: the factor
//! bit-pattern checksum must be identical for every group size.

use cstf_bench::{arg_usize, print_header};
use cstf_core::auntf::TensorFormat;
use cstf_core::hybrid::WorkloadShape;
use cstf_core::multi_gpu::{multi_gpu_iteration_time, MultiGpuConfig};
use cstf_core::{Auntf, AuntfConfig};
use cstf_device::{DeviceGroup, DeviceSpec};
use cstf_tensor::{Ktensor, SparseTensor};

fn checksum(model: &Ktensor) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut feed = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for f in &model.factors {
        for &v in f.as_slice() {
            feed(v.to_bits());
        }
    }
    for &v in &model.lambda {
        feed(v.to_bits());
    }
    h
}

fn run_curve(name: &str, x: &SparseTensor, rank: usize, iters: usize) {
    let spec = DeviceSpec::h100();
    let cfg =
        AuntfConfig { rank, max_iters: iters, format: TensorFormat::Csf, ..Default::default() };
    let auntf = Auntf::new(x.clone(), cfg);
    let w = WorkloadShape {
        shape: x.shape().to_vec(),
        nnz: x.nnz(),
        rank,
        inner_iters: 10,
        format: TensorFormat::Csf,
    };

    println!("{name}: shape {:?}, nnz {}", x.shape(), x.nnz());
    println!(
        "  {:<6} {:>12} {:>9} {:>9} {:>11} {:>9}  {:<16}",
        "gpus", "executed", "speedup", "eff", "modeled", "eff", "factor checksum"
    );

    let mut t1 = 0.0f64;
    let mut sum1: Option<u64> = None;
    for g in [1usize, 2, 4, 8] {
        let group = DeviceGroup::homogeneous(&spec, g);
        let out = auntf.factorize_sharded(&group).expect("fault-free sharded run");
        let tg = group.devices().iter().map(|d| d.total_seconds()).fold(0.0, f64::max);
        if g == 1 {
            t1 = tg;
        }
        let sum = checksum(&out.model);
        let exact = match sum1 {
            None => {
                sum1 = Some(sum);
                "reference"
            }
            Some(s) if s == sum => "bitwise ==",
            Some(_) => "MISMATCH!",
        };
        let est = multi_gpu_iteration_time(&w, &spec, &MultiGpuConfig::dgx(g));
        println!(
            "  {:<6} {:>11.3e}s {:>8.2}x {:>8.0}% {:>10.2}x {:>8.0}%  {sum:016x} {exact}",
            g,
            tg,
            t1 / tg,
            100.0 * t1 / (g as f64 * tg),
            est.speedup,
            100.0 * est.efficiency
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rank = arg_usize(&args, "--rank", 16);
    let iters = arg_usize(&args, "--iters", 3);
    let nnz_small = arg_usize(&args, "--nnz-small", 3_000);
    let nnz_large = arg_usize(&args, "--nnz-large", 120_000);

    print_header(&format!(
        "Executed sharded strong scaling (H100 group, R = {rank}, {iters} iterations)"
    ));

    let small = cstf_data::by_name("Uber").expect("catalog entry").generate_scaled(nnz_small, 0);
    let large = cstf_data::by_name("Flickr").expect("catalog entry").generate_scaled(nnz_large, 0);

    run_curve("small tensor (Uber analogue)", &small, rank, iters);
    run_curve("large tensor (Flickr analogue)", &large, rank, iters);

    println!(
        "Executed efficiency should degrade faster on the small tensor: the\n\
         per-device shard MTTKRP shrinks with g while the factor all-gather\n\
         and Gram all-reduce (ring terms ~(g-1)/g and 2(g-1)/g) do not.\n\
         Checksums confirm every group size computes the same bits."
    );
}
