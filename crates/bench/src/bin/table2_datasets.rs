//! Regenerates **Table 2** — the sparse tensor datasets.
//!
//! Prints, for each of the ten FROSTT tensors: the paper-scale dimensions,
//! nnz and density, and the scaled analogue actually generated for the
//! figure runs (`--base N` overrides the base nnz budget, default 40000).

use cstf_bench::{arg_usize, catalog_workloads, print_header};

fn dims(v: &[usize]) -> String {
    v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" x ")
}

fn dims_u64(v: &[u64]) -> String {
    v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" x ")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);

    print_header(&format!("Table 2: datasets (paper scale vs generated analogues, base {base})"));
    println!(
        "{:<11} {:>34} {:>12} {:>10} | {:>26} {:>9} {:>10}",
        "Tensor", "paper dims", "paper nnz", "density", "scaled dims", "nnz", "density"
    );

    for w in catalog_workloads(base, 7) {
        println!(
            "{:<11} {:>34} {:>12} {:>10.1e} | {:>26} {:>9} {:>10.1e}",
            w.entry.name,
            dims_u64(w.entry.paper_dims),
            w.entry.paper_nnz,
            w.entry.paper_density(),
            dims(w.tensor.shape()),
            w.tensor.nnz(),
            w.tensor.density(),
        );
    }

    println!();
    println!(
        "Scaled analogues multiply every mode length and nnz by the same factor,\n\
         preserving the update-vs-MTTKRP workload ratio (DESIGN.md section 1)."
    );
}
