//! Regenerates **Figures 9 and 10** — speedup of the GPU framework using
//! the MU and HALS update schemes over the modified-PLANC CPU library,
//! rank 32, across the ten Table 2 tensors.
//!
//! Paper reference: geometric means of 6.42x (MU) / 5.90x (HALS) on the
//! A100 and 8.89x (MU) / 7.78x (HALS) on the H100 — comparable to the ADMM
//! speedups, demonstrating framework flexibility (§5.4).

use serde::Serialize;

use cstf_bench::{
    arg_usize, catalog_workloads, geometric_mean, print_header, run_preset, write_json,
};
use cstf_core::presets;
use cstf_device::DeviceSpec;

#[derive(Serialize)]
struct Row {
    tensor: &'static str,
    gpu: &'static str,
    mu_speedup: f64,
    hals_speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let rank = arg_usize(&args, "--rank", 32);
    let iters = 2;

    let workloads = catalog_workloads(base, 7);
    let mut rows = Vec::new();

    for (gpu_name, gpu_spec, paper_mu, paper_hals) in
        [("A100", DeviceSpec::a100(), 6.42, 5.90), ("H100", DeviceSpec::h100(), 8.89, 7.78)]
    {
        print_header(&format!(
            "Figure {}: MU / HALS speedup over PLANC-CPU, R = {rank}, {gpu_name}",
            if gpu_name == "A100" { 9 } else { 10 }
        ));
        println!("{:<11} {:>10} {:>10}", "Tensor", "MU", "HALS");

        let mut mu_speedups = Vec::new();
        let mut hals_speedups = Vec::new();
        for w in &workloads {
            let cpu_spec = w.device_spec(&DeviceSpec::icelake_xeon());
            let dev_spec = w.device_spec(&gpu_spec);

            let mu_cpu = run_preset(
                &presets::planc_cpu_on(
                    rank,
                    cstf_core::UpdateMethod::Mu(cstf_core::MuConfig::default()),
                    cpu_spec.clone(),
                ),
                &w.tensor,
                iters,
            );
            let mu_gpu =
                run_preset(&presets::cstf_gpu_mu(rank, dev_spec.clone()), &w.tensor, iters);
            let hals_cpu = run_preset(
                &presets::planc_cpu_on(
                    rank,
                    cstf_core::UpdateMethod::Hals(cstf_core::HalsConfig::default()),
                    cpu_spec,
                ),
                &w.tensor,
                iters,
            );
            let hals_gpu = run_preset(&presets::cstf_gpu_hals(rank, dev_spec), &w.tensor, iters);

            let row = Row {
                tensor: w.entry.name,
                gpu: gpu_name,
                mu_speedup: mu_gpu.speedup_over(&mu_cpu),
                hals_speedup: hals_gpu.speedup_over(&hals_cpu),
            };
            println!("{:<11} {:>9.2}x {:>9.2}x", row.tensor, row.mu_speedup, row.hals_speedup);
            mu_speedups.push(row.mu_speedup);
            hals_speedups.push(row.hals_speedup);
            rows.push(row);
        }
        println!(
            "{:<11} {:>9.2}x {:>9.2}x   [paper: {paper_mu:.2}x / {paper_hals:.2}x]",
            "GeoMean",
            geometric_mean(&mu_speedups),
            geometric_mean(&hals_speedups)
        );
    }

    let _ = write_json("fig09_10_mu_hals", &rows);
}
