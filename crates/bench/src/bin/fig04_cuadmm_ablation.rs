//! Regenerates **Figure 4** — per-mode speedup of the cuADMM optimizations
//! over the generic cuBLAS-style ADMM on the GPU, rank 32.
//!
//! Three bars per mode: operation fusion alone (OF), pre-inversion alone
//! (PI), and both (the full cuADMM). The paper's findings to reproduce:
//! PI > OF individually, OF+PI always best, speedup grows with factor
//! matrix size (small NIPS ~1.0-1.3x, large Flickr/Delicious/Amazon up to
//! ~1.8x).

use serde::Serialize;

use cstf_bench::{arg_usize, geometric_mean, print_header, write_json, Workload};
use cstf_core::auntf::seeded_factors;
use cstf_core::{admm_update, AdmmConfig, AdmmWorkspace};
use cstf_data::figure4_subset;
use cstf_device::{Device, DeviceSpec, Phase};
use cstf_formats::Blco;
use cstf_linalg::{gram, hadamard_of_grams, Mat};

#[derive(Serialize)]
struct Row {
    tensor: &'static str,
    mode: usize,
    of_speedup: f64,
    pi_speedup: f64,
    both_speedup: f64,
    /// Measured host wall-clock speedups for the same variants — the
    /// real-execution counterpart of the modeled bars (noisy at small
    /// sizes; only the modeled numbers are shape-checked).
    of_measured_speedup: f64,
    pi_measured_speedup: f64,
    both_measured_speedup: f64,
}

/// Modeled and measured update-phase seconds of one ADMM call under `cfg`.
fn time_variant(spec: &DeviceSpec, cfg: &AdmmConfig, m: &Mat, s: &Mat, h0: &Mat) -> (f64, f64) {
    let dev = Device::new(spec.clone());
    let mut h = h0.clone();
    let mut u = Mat::zeros(h0.rows(), h0.cols());
    let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
    // Warm-up so measured numbers reflect the steady state (buffers grown,
    // caches warm), then a metered run on a fresh profiler.
    admm_update(&dev, cfg, m, s, &mut h, &mut u, &mut ws).expect("fault-free update");
    dev.reset_shared();
    let mut h = h0.clone();
    let mut u = Mat::zeros(h0.rows(), h0.cols());
    admm_update(&dev, cfg, m, s, &mut h, &mut u, &mut ws).expect("fault-free update");
    let totals = dev.phase_totals(Phase::Update);
    (totals.seconds, totals.measured_s)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let rank = arg_usize(&args, "--rank", 32);

    print_header(&format!(
        "Figure 4: cuADMM speedup over generic (cuBLAS) ADMM per mode, R = {rank}, H100"
    ));
    println!("{:<11} {:>5} {:>10} {:>10} {:>12}", "Tensor", "mode", "OF", "PI", "OF+PI");

    let generic = AdmmConfig::generic();
    let of_only = AdmmConfig { operation_fusion: true, pre_inversion: false, ..generic };
    let pi_only = AdmmConfig { operation_fusion: false, pre_inversion: true, ..generic };
    let both = AdmmConfig::cuadmm();

    let mut rows = Vec::new();
    let mut all_both = Vec::new();

    for entry in figure4_subset() {
        let w = Workload::from_entry(entry, base, 7);
        let spec = w.device_spec(&DeviceSpec::h100());
        let x = &w.tensor;
        let factors = seeded_factors(x.shape(), rank, 11);
        let grams: Vec<Mat> = factors.iter().map(gram::gram).collect();
        let blco = Blco::from_coo(x);

        for mode in 0..x.nmodes() {
            let s = hadamard_of_grams(&grams, mode);
            let m = blco.mttkrp(&factors, mode);
            let h0 = &factors[mode];

            let (t_generic, w_generic) = time_variant(&spec, &generic, &m, &s, h0);
            let (t_of, w_of) = time_variant(&spec, &of_only, &m, &s, h0);
            let (t_pi, w_pi) = time_variant(&spec, &pi_only, &m, &s, h0);
            let (t_both, w_both) = time_variant(&spec, &both, &m, &s, h0);

            let row = Row {
                tensor: w.entry.name,
                mode: mode + 1,
                of_speedup: t_generic / t_of,
                pi_speedup: t_generic / t_pi,
                both_speedup: t_generic / t_both,
                of_measured_speedup: w_generic / w_of.max(f64::MIN_POSITIVE),
                pi_measured_speedup: w_generic / w_pi.max(f64::MIN_POSITIVE),
                both_measured_speedup: w_generic / w_both.max(f64::MIN_POSITIVE),
            };
            println!(
                "{:<11} {:>5} {:>9.2}x {:>9.2}x {:>11.2}x   (measured: OF {:.2}x PI {:.2}x \
                 both {:.2}x)",
                row.tensor,
                row.mode,
                row.of_speedup,
                row.pi_speedup,
                row.both_speedup,
                row.of_measured_speedup,
                row.pi_measured_speedup,
                row.both_measured_speedup
            );
            all_both.push(row.both_speedup);
            rows.push(row);
        }
    }

    println!();
    println!(
        "GeoMean (OF+PI): {:.2}x   [paper: 1.8x geomean on H100, up to 1.8x on\n\
         large tensors, ~1.0-1.3x on small/medium]",
        geometric_mean(&all_both)
    );
    let measured: Vec<f64> = rows.iter().map(|r| r.both_measured_speedup).collect();
    println!(
        "GeoMean (OF+PI, measured host wall-clock): {:.2}x   [fused multi-kernel \
         cuADMM vs generic; noisy at small sizes]",
        geometric_mean(&measured)
    );

    // Shape checks matching the paper's claims.
    for r in &rows {
        assert!(
            r.both_speedup >= r.of_speedup.max(r.pi_speedup) - 0.05,
            "{} mode {}: combined must be at least each alone",
            r.tensor,
            r.mode
        );
    }
    println!("[shape check passed: OF+PI >= max(OF, PI) on every mode]");

    let _ = write_json("fig04_cuadmm_ablation", &rows);
}
