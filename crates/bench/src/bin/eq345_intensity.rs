//! Verifies **Equations 3–5** — the paper's ADMM computation / data-movement
//! analysis — against machine-counted flops and bytes.
//!
//! The paper derives, per ADMM inner iteration on an `I x R` factor:
//!
//! * W = 19*I*R + 2*I*R^2 flops            (Eq. 3)
//! * Q = 22*I*R + R^2 words                (Eq. 4)
//! * AI = (19 + 2R) / ((22 + R/I) * 8)     (Eq. 5, flop/byte)
//!
//! yielding AI ~ 0.29 / 0.47 / 0.83 for R = 16 / 32 / 64 — far below every
//! device's ridge point, hence bandwidth-bound. This binary runs a real
//! generic ADMM iteration, reads the profiler's exact tallies, and prints
//! both alongside the analytic counts.

use cstf_bench::print_header;
use cstf_core::auntf::seeded_factors;
use cstf_core::{admm_update, AdmmConfig, AdmmWorkspace};
use cstf_device::{Device, DeviceSpec, Phase};
use cstf_linalg::{gram, Mat};

fn main() {
    let i = 100_000usize;

    print_header("Equations 3-5: ADMM per-inner-iteration cost analysis (I = 100000)");
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "R", "paper flops", "counted", "paper words", "counted", "AI(eq5)", "AI(meas)"
    );

    for rank in [16usize, 32, 64] {
        // One real generic ADMM call with a single inner iteration.
        let factors = seeded_factors(&[i, 50, 40], rank, 3);
        let mut s_full = gram::gram(&factors[1]);
        cstf_linalg::hadamard_in_place(&mut s_full, &gram::gram(&factors[2]));

        let m = Mat::from_fn(i, rank, |r, c| ((r * 7 + c) % 13) as f64 * 0.1);
        let dev = Device::new(DeviceSpec::h100());
        let mut h = factors[0].clone();
        let mut u = Mat::zeros(i, rank);
        let mut ws = AdmmWorkspace::new(i, rank);
        let cfg = AdmmConfig { inner_iters: 1, tol: 0.0, ..AdmmConfig::generic() };
        admm_update(&dev, &cfg, &m, &s_full, &mut h, &mut u, &mut ws).expect("fault-free update");

        let totals = dev.phase_totals(Phase::Update);
        let (i_f, r_f) = (i as f64, rank as f64);
        let paper_flops = 19.0 * i_f * r_f + 2.0 * i_f * r_f * r_f;
        let paper_words = 22.0 * i_f * r_f + r_f * r_f;
        let ai_paper = (19.0 + 2.0 * r_f) / ((22.0 + r_f / i_f) * 8.0);
        let ai_measured = totals.flops / totals.bytes;

        println!(
            "{:<6} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>8.2} {:>8.2}",
            rank,
            paper_flops,
            totals.flops,
            paper_words,
            totals.bytes / 8.0,
            ai_paper,
            ai_measured
        );

        // The unfused kernel ledger is calibrated to Eqs. 3–4 (see the
        // table in admm.rs), so counted totals must agree within 5% — the
        // only slack is the O(R^2)/O(R^3) solver-setup terms the closed
        // forms fold away. Intensity stays below every ridge point.
        let rel = |a: f64, b: f64| (a / b - 1.0).abs();
        assert!(rel(totals.flops, paper_flops) < 0.05, "flops off Eq. 3 by >5%");
        assert!(rel(totals.bytes, paper_words * 8.0) < 0.05, "bytes off Eq. 4 by >5%");
        assert!(rel(ai_measured, ai_paper) < 0.05, "AI off Eq. 5 by >5%");
        for spec in DeviceSpec::table1() {
            assert!(
                ai_measured < spec.ridge_intensity(),
                "ADMM must be bandwidth-bound on {}",
                spec.name
            );
        }
    }

    println!();
    println!(
        "[check passed: counted cost within 5% of Eqs. 3-4; measured\n\
         intensity below every ridge point => ADMM is bandwidth-bound]"
    );
}
