//! Regenerates **Figure 1** — execution-time breakdown of constrained
//! tensor factorization for a dense tensor (DenseTF) vs a sparse tensor
//! (SparseTF) with the ADMM update, rank 32, on the CPU.
//!
//! The paper's point: for dense tensors MTTKRP dominates; for real sparse
//! tensors (Delicious) the ADMM UPDATE phase dominates — the observation
//! motivating the whole cuADMM effort.
//!
//! `--dense-scale F` scales the 400x200x100x50 dense tensor (default 0.35
//! — note MTTKRP work shrinks as scale^4 while UPDATE work shrinks as
//! scale^1, so very small scales would invert the paper's dense-tensor
//! point; 0.35 keeps MTTKRP dominant while running in seconds);
//! `--base N` sets the sparse analogue's nnz base (default 40000).

use cstf_bench::{arg_usize, print_header, print_row, run_preset, run_preset_dense, Workload};
use cstf_core::presets;
use cstf_core::UpdateMethod;
use cstf_data::{by_name, dense_tf_shape};
use cstf_device::DeviceSpec;
use cstf_tensor::DenseTensor;

fn percent_row(label: &str, fr: [f64; 4]) {
    print_row(label, &fr.iter().map(|f| format!("{:.1}%", 100.0 * f)).collect::<Vec<_>>());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let dense_scale = args
        .iter()
        .position(|a| a == "--dense-scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.35);
    let rank = 32;

    print_header("Figure 1: DenseTF vs SparseTF phase breakdown (ADMM, R = 32, CPU)");
    print_row("", &["GRAM", "MTTKRP", "UPDATE", "NORMALIZE"].map(String::from));

    // DenseTF: the paper's synthetic 400x200x100x50 tensor (scaled), PLANC
    // with ADMM on the CPU.
    let shape = dense_tf_shape(dense_scale);
    let dense = DenseTensor::from_fn(shape.clone(), |c| {
        ((c.iter().sum::<usize>() % 17) as f64) * 0.25 + 0.1
    });
    let preset = presets::planc_cpu_on(
        rank,
        UpdateMethod::Admm(cstf_core::AdmmConfig {
            operation_fusion: false,
            pre_inversion: false,
            ..cstf_core::AdmmConfig::cuadmm()
        }),
        DeviceSpec::icelake_xeon().scaled(dense_scale),
    );
    let r_dense = run_preset_dense(&preset, &dense, 1);
    percent_row("DenseTF", r_dense.per_iter.fractions());

    // SparseTF: the Delicious analogue on the same CPU configuration.
    let w = Workload::from_entry(by_name("Delicious").unwrap(), base, 7);
    let preset = presets::planc_cpu_on(
        rank,
        UpdateMethod::Admm(cstf_core::AdmmConfig {
            operation_fusion: false,
            pre_inversion: false,
            ..cstf_core::AdmmConfig::cuadmm()
        }),
        w.device_spec(&DeviceSpec::icelake_xeon()),
    );
    let r_sparse = run_preset(&preset, &w.tensor, 1);
    percent_row("SparseTF", r_sparse.per_iter.fractions());

    println!();
    println!(
        "Paper shape: DenseTF is MTTKRP-dominated; SparseTF (Delicious) is\n\
         UPDATE-dominated. Dense tensor: {:?} (scale {dense_scale}); sparse:\n\
         Delicious analogue, {} nnz.",
        shape,
        w.tensor.nnz()
    );

    assert!(r_dense.per_iter.mttkrp > r_dense.per_iter.update, "DenseTF must be MTTKRP-dominated");
    assert!(
        r_sparse.per_iter.update > r_sparse.per_iter.mttkrp,
        "SparseTF must be UPDATE-dominated"
    );
    println!("[shape check passed: DenseTF MTTKRP-bound, SparseTF UPDATE-bound]");
}
