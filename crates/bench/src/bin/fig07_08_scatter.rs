//! Regenerates **Figures 7 and 8** — per-tensor comparison of the speedup
//! achieved by the GPU framework's MTTKRP kernel vs its ADMM (update)
//! kernel, relative to SPLATT on the CPU, rank 32.
//!
//! The paper's observation: tensors with long modes (upper-left of the
//! scatter) gain most from GPU ADMM but least from GPU MTTKRP (sparser ->
//! less reuse), and vice versa for short-mode tensors.

use serde::Serialize;

use cstf_bench::{arg_usize, catalog_workloads, print_header, run_preset, write_json};
use cstf_core::presets;
use cstf_device::DeviceSpec;

#[derive(Serialize)]
struct Row {
    tensor: &'static str,
    gpu: &'static str,
    mttkrp_speedup: f64,
    admm_speedup: f64,
    gram_speedup: f64,
    normalize_speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let rank = arg_usize(&args, "--rank", 32);
    let iters = 2;

    let workloads = catalog_workloads(base, 7);
    let mut rows = Vec::new();

    for (gpu_name, gpu_spec) in [("A100", DeviceSpec::a100()), ("H100", DeviceSpec::h100())] {
        print_header(&format!(
            "Figure {}: MTTKRP vs ADMM speedup over SPLATT-CPU, R = {rank}, {gpu_name}",
            if gpu_name == "A100" { 7 } else { 8 }
        ));
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10}",
            "Tensor", "MTTKRP", "ADMM", "GRAM", "NORMALIZE"
        );
        for w in &workloads {
            let cpu = presets::splatt_cpu_on(rank, w.device_spec(&DeviceSpec::icelake_xeon()));
            let gpu = presets::cstf_gpu(rank, w.device_spec(&gpu_spec));
            let r_cpu = run_preset(&cpu, &w.tensor, iters);
            let r_gpu = run_preset(&gpu, &w.tensor, iters);
            let row = Row {
                tensor: w.entry.name,
                gpu: gpu_name,
                mttkrp_speedup: r_cpu.per_iter.mttkrp / r_gpu.per_iter.mttkrp,
                admm_speedup: r_cpu.per_iter.update / r_gpu.per_iter.update,
                gram_speedup: r_cpu.per_iter.gram / r_gpu.per_iter.gram,
                normalize_speedup: r_cpu.per_iter.normalize / r_gpu.per_iter.normalize,
            };
            println!(
                "{:<11} {:>9.2}x {:>9.2}x {:>9.2}x {:>9.2}x",
                row.tensor,
                row.mttkrp_speedup,
                row.admm_speedup,
                row.gram_speedup,
                row.normalize_speedup
            );
            rows.push(row);
        }
    }

    println!();
    println!(
        "Paper shape: long-mode tensors (Flickr/Delicious/NELL1) sit upper-left\n\
         (high ADMM speedup, lower MTTKRP speedup); short-mode tensors sit\n\
         lower-right. VAST is the noted exception."
    );
    let _ = write_json("fig07_08_scatter", &rows);
}
