//! Extension experiment (paper §7 future work): strong-scaling projection
//! of the cSTF framework across 1-8 GPUs of a DGX-style node, per Table 2
//! tensor at paper scale.

use cstf_bench::{arg_usize, print_header};
use cstf_core::auntf::TensorFormat;
use cstf_core::hybrid::WorkloadShape;
use cstf_core::multi_gpu::{multi_gpu_iteration_time, MultiGpuConfig};
use cstf_data::table2;
use cstf_device::DeviceSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rank = arg_usize(&args, "--rank", 32);

    print_header(&format!(
        "Extension: multi-GPU strong scaling (H100 DGX node, R = {rank}, per-iteration)"
    ));
    println!(
        "{:<11} {:>11} {:>11} {:>11} {:>11}  (speedup over 1 GPU)",
        "Tensor", "2 GPUs", "4 GPUs", "8 GPUs", "8-GPU eff"
    );

    let spec = DeviceSpec::h100();
    for entry in table2() {
        let w = WorkloadShape {
            shape: entry.paper_dims.iter().map(|&d| d as usize).collect(),
            nnz: entry.paper_nnz as usize,
            rank,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let est: Vec<_> = [2usize, 4, 8]
            .iter()
            .map(|&g| multi_gpu_iteration_time(&w, &spec, &MultiGpuConfig::dgx(g)))
            .collect();
        println!(
            "{:<11} {:>10.2}x {:>10.2}x {:>10.2}x {:>10.0}%",
            entry.name,
            est[0].speedup,
            est[1].speedup,
            est[2].speedup,
            100.0 * est[2].efficiency
        );
    }

    println!();
    println!(
        "Expected shape: billion-nonzero tensors (Amazon) scale near-linearly;\n\
         small tensors (NIPS, Uber) saturate early as the all-gather of the\n\
         updated factors and per-kernel launch latency stop amortizing."
    );
}
