//! Regenerates **Figures 5 and 6** — end-to-end per-iteration speedup of
//! the GPU cSTF framework over SPLATT (CPU) with the ADMM update, rank 32,
//! across the ten Table 2 tensors, on the A100 and H100.
//!
//! Also runs the §5.1 rank sweep with `--ranks 16,32,64`.
//! `--base N` sets the nnz budget base (default 40000).

use serde::Serialize;

use cstf_bench::{
    arg_usize, catalog_workloads, geometric_mean, print_header, run_preset, write_json,
};
use cstf_core::presets;
use cstf_device::DeviceSpec;

#[derive(Serialize)]
struct Row {
    tensor: &'static str,
    rank: usize,
    gpu: &'static str,
    cpu_s: f64,
    gpu_s: f64,
    speedup: f64,
}

/// Paper-reported speedups at R = 32 for reference printing.
fn paper_reference(gpu: &str, tensor: &str) -> Option<f64> {
    let a100 = [
        ("NIPS", 1.47),
        ("Uber", 1.55),
        ("Chicago", 2.11),
        ("Vast", 2.60),
        ("Enron", 3.99),
        ("NELL2", 2.43),
        ("Flickr", 24.74),
        ("Delicious", 12.61),
        ("NELL1", 41.59),
        ("Amazon", 7.52),
    ];
    let h100 = [
        ("NIPS", 1.22),
        ("Uber", 1.33),
        ("Chicago", 2.40),
        ("Vast", 6.10),
        ("Enron", 16.91),
        ("NELL2", 2.40),
        ("Flickr", 34.23),
        ("Delicious", 37.56),
        ("NELL1", 58.05),
        ("Amazon", 16.91),
    ];
    let table: &[(&str, f64)] = if gpu == "A100" { &a100 } else { &h100 };
    table.iter().find(|(n, _)| *n == tensor).map(|&(_, s)| s)
}

fn parse_ranks(args: &[String]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![32])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let ranks = parse_ranks(&args);
    let iters = 2;

    let workloads = catalog_workloads(base, 7);
    let mut rows: Vec<Row> = Vec::new();

    for &rank in &ranks {
        for (gpu_name, gpu_spec) in [("A100", DeviceSpec::a100()), ("H100", DeviceSpec::h100())] {
            print_header(&format!(
                "Figure {}: end-to-end per-iteration speedup vs SPLATT, R = {rank}, {gpu_name}",
                if gpu_name == "A100" { 5 } else { 6 }
            ));
            println!(
                "{:<11} {:>12} {:>12} {:>9} {:>11}",
                "Tensor", "SPLATT (s)", "cSTF-GPU (s)", "speedup", "paper(R32)"
            );

            let mut speedups = Vec::new();
            for w in &workloads {
                let cpu = presets::splatt_cpu_on(rank, w.device_spec(&DeviceSpec::icelake_xeon()));
                let gpu = presets::cstf_gpu(rank, w.device_spec(&gpu_spec));
                let r_cpu = run_preset(&cpu, &w.tensor, iters);
                let r_gpu = run_preset(&gpu, &w.tensor, iters);
                let s = r_gpu.speedup_over(&r_cpu);
                speedups.push(s);
                let paper = paper_reference(gpu_name, w.entry.name)
                    .map(|p| format!("{p:.2}x"))
                    .unwrap_or_default();
                println!(
                    "{:<11} {:>12.3e} {:>12.3e} {:>8.2}x {:>11}",
                    w.entry.name,
                    r_cpu.per_iter_total(),
                    r_gpu.per_iter_total(),
                    s,
                    paper
                );
                rows.push(Row {
                    tensor: w.entry.name,
                    rank,
                    gpu: gpu_name,
                    cpu_s: r_cpu.per_iter_total(),
                    gpu_s: r_gpu.per_iter_total(),
                    speedup: s,
                });
            }
            let gm = geometric_mean(&speedups);
            let paper_gm = if gpu_name == "A100" { 5.10 } else { 7.01 };
            println!("{:<11} {:>12} {:>12} {:>8.2}x {:>10.2}x", "GeoMean", "", "", gm, paper_gm);
        }
    }

    let _ = write_json("fig05_06_speedup", &rows);
}
