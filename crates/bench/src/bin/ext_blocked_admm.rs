//! Extension ablation (DESIGN.md §4 / paper §4.2): blocked AO-ADMM
//! (Smith et al., the paper's ref. [29]) block-size sweep on the CPU vs the
//! GPU — the paper's claim that cache-blocking helps shared-memory CPUs
//! but "is not effective on GPU architectures".

use cstf_bench::{arg_usize, print_header};
use cstf_core::admm::{blocked_admm_update, AdmmConfig};
use cstf_core::auntf::seeded_factors;
use cstf_device::{Device, DeviceSpec, Phase};
use cstf_linalg::{gram, Mat};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows = arg_usize(&args, "--rows", 100_000);
    let rank = arg_usize(&args, "--rank", 32);
    let scale = 0.002; // paper-scale replay factor for the device specs

    print_header(&format!(
        "Extension: blocked ADMM block-size sweep (I = {rows}, R = {rank}, generic ADMM)"
    ));

    let factors = seeded_factors(&[rows, 64, 64], rank, 3);
    let mut s = gram::gram(&factors[1]);
    cstf_linalg::hadamard_in_place(&mut s, &gram::gram(&factors[2]));
    let m = cstf_linalg::matmul(&factors[0], &s);
    let h0 = factors[0].clone();
    let cfg = AdmmConfig { tol: 0.0, inner_iters: 10, ..AdmmConfig::generic() };

    let time_on = |spec: DeviceSpec, block: usize| {
        let dev = Device::new(spec);
        let mut h = h0.clone();
        let mut u = Mat::zeros(rows, rank);
        blocked_admm_update(&dev, &cfg, block, &m, &s, &mut h, &mut u).expect("fault-free update");
        dev.phase_totals(Phase::Update).seconds
    };

    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "block rows", "Xeon (s)", "H100 (s)", "Xeon gain", "H100 gain"
    );
    let cpu_base = time_on(DeviceSpec::icelake_xeon().scaled(scale), 0);
    let gpu_base = time_on(DeviceSpec::h100().scaled(scale), 0);
    println!(
        "{:<12} {:>14.3e} {:>14.3e} {:>12} {:>12}",
        "unblocked", cpu_base, gpu_base, "1.00x", "1.00x"
    );

    let mut best_cpu_gain: f64 = 0.0;
    let mut best_gpu_gain: f64 = 0.0;
    for block in [200usize, 500, 1000, 2000, 5000, 20000] {
        let cpu = time_on(DeviceSpec::icelake_xeon().scaled(scale), block);
        let gpu = time_on(DeviceSpec::h100().scaled(scale), block);
        let cpu_gain = cpu_base / cpu;
        let gpu_gain = gpu_base / gpu;
        best_cpu_gain = best_cpu_gain.max(cpu_gain);
        best_gpu_gain = best_gpu_gain.max(gpu_gain);
        println!(
            "{:<12} {:>14.3e} {:>14.3e} {:>11.2}x {:>11.2}x",
            block, cpu, gpu, cpu_gain, gpu_gain
        );
    }

    println!();
    println!(
        "Best blocking gain: Xeon {best_cpu_gain:.2}x vs H100 {best_gpu_gain:.2}x\n\
         [paper section 4.2: blockwise reformulation helps shared-memory CPUs but is\n\
         not effective on GPUs]"
    );
    assert!(best_cpu_gain > 1.5 * best_gpu_gain, "blocking should be lopsided toward the CPU");
    println!("[shape check passed: blocking is a CPU technique]");
}
