//! Extension experiment (paper §7 future work): the hybrid CPU/GPU
//! placement decision model, swept over the Table 2 catalog at paper scale.
//!
//! For each tensor the model predicts per-phase times on the Xeon and the
//! H100 from the workload shape alone and recommends a placement; the
//! binary also validates the prediction against the metered execution of
//! the scaled analogue.

use cstf_bench::{arg_usize, print_header, run_preset, Workload};
use cstf_core::auntf::TensorFormat;
use cstf_core::hybrid::{predict_phases, recommend_placement, Placement, WorkloadShape};
use cstf_core::presets;
use cstf_data::table2;
use cstf_device::DeviceSpec;

fn place_str(p: Placement) -> &'static str {
    match p {
        Placement::Cpu => "CPU",
        Placement::Gpu => "GPU",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let rank = arg_usize(&args, "--rank", 32);

    print_header(&format!(
        "Extension: hybrid placement decision model (paper-scale shapes, R = {rank})"
    ));
    println!(
        "{:<11} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "Tensor", "MTTKRP", "UPDATE", "all-CPU (s)", "all-GPU (s)", "advantage"
    );

    let cpu = DeviceSpec::icelake_xeon();
    let gpu = DeviceSpec::h100();

    for entry in table2() {
        let w = WorkloadShape {
            shape: entry.paper_dims.iter().map(|&d| d as usize).collect(),
            nnz: entry.paper_nnz as usize,
            rank,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let plan = recommend_placement(&w, &cpu, &gpu);
        println!(
            "{:<11} {:>8} {:>8} {:>12.3e} {:>12.3e} {:>9.2}x",
            entry.name,
            place_str(plan.mttkrp),
            place_str(plan.update),
            plan.all_cpu_s,
            plan.all_gpu_s,
            plan.all_cpu_s.min(plan.all_gpu_s) / plan.predicted_s
        );
    }

    // Validation: the analytic prediction must rank devices the same way
    // the metered execution does on the scaled analogues.
    println!();
    println!("validation against metered execution (scaled analogues, base {base}):");
    let mut agreements = 0;
    let mut total = 0;
    for entry in table2() {
        let wl = Workload::from_entry(entry, base, 7);
        let shape = WorkloadShape {
            shape: wl.tensor.shape().to_vec(),
            nnz: wl.tensor.nnz(),
            rank,
            inner_iters: 10,
            format: TensorFormat::Blco,
        };
        let cpu_s = wl.device_spec(&cpu);
        let gpu_s = wl.device_spec(&gpu);
        let predicted_gpu_wins =
            predict_phases(&shape, &gpu_s).total() < predict_phases(&shape, &cpu_s).total();

        let r_cpu = run_preset(&presets::splatt_cpu_on(rank, cpu_s), &wl.tensor, 1);
        let r_gpu = run_preset(&presets::cstf_gpu(rank, gpu_s), &wl.tensor, 1);
        let measured_gpu_wins = r_gpu.per_iter_total() < r_cpu.per_iter_total();

        total += 1;
        if predicted_gpu_wins == measured_gpu_wins {
            agreements += 1;
        }
        println!(
            "  {:<11} predicted: {:<4} measured: {}",
            wl.entry.name,
            if predicted_gpu_wins { "GPU" } else { "CPU" },
            if measured_gpu_wins { "GPU" } else { "CPU" },
        );
    }
    println!("\ndecision agreement: {agreements}/{total}");
    assert!(agreements * 10 >= total * 8, "decision model should agree on >= 80% of tensors");
    println!("[shape check passed: decision model ranks devices like the metered runs]");
}
