//! Regenerates **Table 1** — hardware and software setup.
//!
//! Prints the device-spec catalog the cost model is parameterized with,
//! side by side with the paper's values (they are the same numbers; the
//! table documents what the simulated devices assume).

use cstf_bench::print_header;
use cstf_device::DeviceSpec;

fn main() {
    print_header("Table 1: Hardware and software setup (simulated device specs)");
    let devices = DeviceSpec::table1();

    let row = |label: &str, f: &dyn Fn(&DeviceSpec) -> String| {
        print!("{label:<22}");
        for d in &devices {
            print!(" {:>26}", f(d));
        }
        println!();
    };

    row("Model", &|d| d.name.to_string());
    row("u-arch", &|d| d.uarch.to_string());
    row("Frequency (GHz)", &|d| format!("{:.2}", d.freq_ghz));
    row("Cores (SM)", &|d| d.cores.to_string());
    row("CUDA cores", &|d| if d.cuda_cores > 0 { d.cuda_cores.to_string() } else { "-".into() });
    row("Peak FP64 (GFLOP/s)", &|d| format!("{:.0}", d.peak_gflops_f64));
    row("DRAM (GB)", &|d| format!("{:.0}", d.dram_gb));
    row("Bandwidth (GB/s)", &|d| format!("{:.0}", d.mem_bw_gbs));
    row("L1/near cache (MiB)", &|d| format!("{:.1}", d.l1_mib));
    row("LLC (MiB)", &|d| format!("{:.1}", d.llc_mib));
    row("OS / driver", &|d| d.os_driver.to_string());
    row("Compiler", &|d| d.compiler.to_string());
    row("Ridge (flop/byte)", &|d| format!("{:.2}", d.ridge_intensity()));

    println!();
    println!(
        "Note: these specs parameterize the roofline cost model that replaces\n\
         the physical A100/H100/Xeon (DESIGN.md section 1)."
    );
}
