//! Regenerates **Figure 3** — execution-time breakdown of cSTF on the three
//! largest tensors (Flickr, Delicious, NELL1) with the ADMM update on the
//! CPU (the modified-PLANC baseline of §4.1).
//!
//! The paper's point: the ADMM UPDATE phase dominates for all three,
//! motivating GPU offload of the update, not just MTTKRP.

use cstf_bench::{arg_usize, print_header, print_row, run_preset, write_json, Workload};
use cstf_core::presets;
use cstf_core::UpdateMethod;
use cstf_data::by_name;
use cstf_device::DeviceSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    tensor: &'static str,
    gram_pct: f64,
    mttkrp_pct: f64,
    update_pct: f64,
    normalize_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 40_000);
    let rank = 32;

    print_header("Figure 3: cSTF phase breakdown on the largest tensors (ADMM, R = 32, CPU)");
    print_row("", &["GRAM", "MTTKRP", "UPDATE", "NORMALIZE"].map(String::from));

    let mut rows = Vec::new();
    for name in ["Flickr", "Delicious", "NELL1"] {
        let w = Workload::from_entry(by_name(name).unwrap(), base, 7);
        let preset = presets::planc_cpu_on(
            rank,
            UpdateMethod::Admm(cstf_core::AdmmConfig {
                operation_fusion: false,
                pre_inversion: false,
                ..cstf_core::AdmmConfig::cuadmm()
            }),
            w.device_spec(&DeviceSpec::icelake_xeon()),
        );
        let r = run_preset(&preset, &w.tensor, 1);
        let fr = r.per_iter.fractions();
        print_row(name, &fr.iter().map(|f| format!("{:.1}%", 100.0 * f)).collect::<Vec<_>>());
        assert!(
            r.per_iter.update > r.per_iter.mttkrp,
            "{name}: UPDATE must dominate MTTKRP on the CPU baseline"
        );
        rows.push(Row {
            tensor: w.entry.name,
            gram_pct: 100.0 * fr[0],
            mttkrp_pct: 100.0 * fr[1],
            update_pct: 100.0 * fr[2],
            normalize_pct: 100.0 * fr[3],
        });
    }

    println!();
    println!("[shape check passed: UPDATE dominates on all three largest tensors]");
    let _ = write_json("fig03_breakdown", &rows);
}
