//! Regenerates **`BENCH_perf.json`** — the repo-root perf trajectory.
//!
//! Runs a small fixed suite of representative benchmarks (CPU baseline,
//! GPU generic ADMM, GPU cuADMM at two ranks, MU) on catalog analogues and
//! writes one schema-versioned row per benchmark: modeled and measured
//! seconds per iteration plus the exact launch/flop/byte tallies. The
//! modeled columns are deterministic, so diffs of this file across PRs are
//! real performance changes, not noise.
//!
//! Usage: `cargo run --release -p cstf-bench --bin bench_perf
//! [--base NNZ] [--iters N] [--out PATH]`

use cstf_bench::{arg_usize, print_header, print_row, run_preset, BenchPerf, BenchPerfEntry};
use cstf_core::presets::{self, SystemPreset};
use cstf_device::DeviceSpec;

fn suite(rank_small: usize, rank_large: usize) -> Vec<(&'static str, SystemPreset)> {
    vec![
        ("splatt-cpu", presets::splatt_cpu(rank_small)),
        ("cstf-generic-a100", presets::cstf_gpu_generic_admm(rank_small, DeviceSpec::a100())),
        ("cstf-cuadmm-a100", presets::cstf_gpu(rank_small, DeviceSpec::a100())),
        ("cstf-cuadmm-h100", presets::cstf_gpu(rank_small, DeviceSpec::h100())),
        ("cstf-cuadmm-a100-r64", presets::cstf_gpu(rank_large, DeviceSpec::a100())),
        ("cstf-mu-a100", presets::cstf_gpu_mu(rank_small, DeviceSpec::a100())),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base = arg_usize(&args, "--base", 30_000);
    let iters = arg_usize(&args, "--iters", 3);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());

    print_header(&format!("BENCH_perf trajectory (base nnz {base}, {iters} iters)"));
    print_row(
        "benchmark",
        &["modeled s/it".into(), "measured s/it".into(), "launches".into(), "flops".into()],
    );

    let mut entries = Vec::new();
    for dataset in ["NELL2", "Flickr"] {
        let entry = cstf_data::by_name(dataset).expect("catalog dataset");
        let x = entry.generate_scaled(base, 0);
        for (tag, preset) in suite(16, 64) {
            let r = run_preset(&preset, &x, iters);
            let name = format!("{}-{}", dataset.to_lowercase(), tag);
            let row = BenchPerfEntry::from_run(&name, &dataset.to_lowercase(), &r);
            print_row(
                &name,
                &[
                    format!("{:.3e}", row.modeled_s_per_iter),
                    format!("{:.3e}", row.measured_s_per_iter),
                    format!("{}", row.launches),
                    format!("{:.3e}", row.flops),
                ],
            );
            entries.push(row);
        }
    }

    let doc = BenchPerf::new(entries);
    doc.write(&out).expect("write perf trajectory");
    eprintln!("[perf trajectory written to {out}]");
}
