//! Run-one-system-on-one-tensor machinery.
//!
//! Results come from [`cstf_device::RunCapture`] — the device's atomic
//! capture-and-clear — so back-to-back repetitions on a shared preset
//! device can never double-count: each run takes exactly the records it
//! produced, and the next run starts from a clean profiler regardless of
//! who read the device in between.

use serde::Serialize;

use cstf_core::presets::SystemPreset;
use cstf_core::Auntf;
use cstf_device::{Phase, RunCapture};
use cstf_telemetry::RunSummary;
use cstf_tensor::{DenseTensor, SparseTensor};

/// Modeled seconds per cSTF phase, per outer iteration.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PhaseBreakdown {
    /// GRAM phase (Gram matrices + Hadamard combination).
    pub gram: f64,
    /// MTTKRP phase.
    pub mttkrp: f64,
    /// UPDATE phase (ADMM / MU / HALS).
    pub update: f64,
    /// NORMALIZE phase.
    pub normalize: f64,
}

impl PhaseBreakdown {
    /// End-to-end per-iteration time (the paper's Figs. 5/6 metric): the
    /// four compute phases, excluding one-time transfers.
    pub fn total(&self) -> f64 {
        self.gram + self.mttkrp + self.update + self.normalize
    }

    /// Fraction of the total spent in each phase, in figure order
    /// (GRAM, MTTKRP, UPDATE, NORMALIZE).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(f64::MIN_POSITIVE);
        [self.gram / t, self.mttkrp / t, self.update / t, self.normalize / t]
    }
}

/// Outcome of one harness run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// System name (preset).
    pub system: &'static str,
    /// Device name.
    pub device: String,
    /// Outer iterations measured.
    pub iters: usize,
    /// Per-iteration phase breakdown (modeled seconds).
    pub per_iter: PhaseBreakdown,
    /// Per-iteration phase breakdown (measured host wall-clock seconds of
    /// the kernel bodies), reported next to the model for reality checks.
    pub per_iter_measured: PhaseBreakdown,
    /// One-time transfer cost (modeled seconds, not per-iteration).
    pub transfer: f64,
    /// Wall-clock seconds the real execution took on the host (all
    /// iterations), for the Criterion-style sanity numbers.
    pub wall_s: f64,
    /// The shared `run.json` data model for this run — what a CLI
    /// `--telemetry` run would have written, derived from the same
    /// [`RunCapture`] the breakdowns above come from.
    pub summary: RunSummary,
}

impl RunResult {
    /// End-to-end per-iteration modeled seconds.
    pub fn per_iter_total(&self) -> f64 {
        self.per_iter.total()
    }

    /// Speedup of this run over a baseline (per-iteration end-to-end).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.per_iter_total() / self.per_iter_total()
    }
}

/// Runs a preset on a sparse tensor for `iters` outer iterations and
/// returns per-iteration modeled phase times.
pub fn run_preset(preset: &SystemPreset, x: &SparseTensor, iters: usize) -> RunResult {
    let mut cfg = preset.config.clone();
    cfg.max_iters = iters;
    cfg.compute_fit = false;
    let rank = cfg.rank;
    let auntf = Auntf::new(x.clone(), cfg);

    // Clear anything a previous (non-harness) consumer left on the shared
    // device; the run's own records are taken atomically below.
    preset.device.reset_shared();
    let t0 = std::time::Instant::now();
    let out = auntf.factorize(&preset.device).expect("fault-free benchmark run");
    let wall_s = t0.elapsed().as_secs_f64();
    debug_assert_eq!(out.iters, iters);

    let capture = preset.device.take_run();
    result_from_capture(preset, iters, wall_s, &capture, x.shape().to_vec(), x.nnz() as u64, rank)
}

/// Runs a preset on a dense tensor (the Fig. 1 DenseTF arm).
pub fn run_preset_dense(preset: &SystemPreset, x: &DenseTensor, iters: usize) -> RunResult {
    let mut cfg = preset.config.clone();
    cfg.max_iters = iters;
    cfg.compute_fit = false;
    let rank = cfg.rank;
    let shape = x.shape().to_vec();
    let nnz = shape.iter().product::<usize>() as u64;
    let auntf = Auntf::new_dense(x.clone(), cfg);

    preset.device.reset_shared();
    let t0 = std::time::Instant::now();
    auntf.factorize(&preset.device).expect("fault-free benchmark run");
    let wall_s = t0.elapsed().as_secs_f64();

    let capture = preset.device.take_run();
    result_from_capture(preset, iters, wall_s, &capture, shape, nnz, rank)
}

fn result_from_capture(
    preset: &SystemPreset,
    iters: usize,
    wall_s: f64,
    capture: &RunCapture,
    shape: Vec<usize>,
    nnz: u64,
    rank: usize,
) -> RunResult {
    let n = iters.max(1) as f64;
    let summary = RunSummary {
        schema_version: cstf_telemetry::summary::SCHEMA_VERSION,
        system: preset.name.to_string(),
        device: preset.device.spec().name.to_string(),
        shape,
        nnz,
        rank: rank as u32,
        iterations: iters as u32,
        converged: false,
        fits: Vec::new(),
        final_fit: None,
        wall_s,
        modeled_s: capture.total_seconds(),
        measured_s: capture.total_measured_seconds(),
        transfer_s: capture.phase(Phase::Transfer).seconds,
        phases: cstf_device::phase_summaries(capture),
        // The bench harness compares modeled time, not heap; RunSummary
        // renders an absent heap section as "n/a".
        heap: None,
        tiling: None,
        elasticity: None,
    };
    RunResult {
        system: preset.name,
        device: preset.device.spec().name.to_string(),
        iters,
        per_iter: PhaseBreakdown {
            gram: capture.phase(Phase::Gram).seconds / n,
            mttkrp: capture.phase(Phase::Mttkrp).seconds / n,
            update: capture.phase(Phase::Update).seconds / n,
            normalize: capture.phase(Phase::Normalize).seconds / n,
        },
        per_iter_measured: PhaseBreakdown {
            gram: capture.phase(Phase::Gram).measured_s / n,
            mttkrp: capture.phase(Phase::Mttkrp).measured_s / n,
            update: capture.phase(Phase::Update).measured_s / n,
            normalize: capture.phase(Phase::Normalize).measured_s / n,
        },
        transfer: capture.phase(Phase::Transfer).seconds,
        wall_s,
        summary,
    }
}

/// A catalog tensor prepared for a figure run: the generated analogue plus
/// the workload scale factor `s = scaled_nnz / paper_nnz` used to scale
/// device specs (see `DeviceSpec::scaled`).
pub struct Workload {
    /// Table 2 entry this analogue was scaled from.
    pub entry: cstf_data::CatalogEntry,
    /// The generated tensor.
    pub tensor: SparseTensor,
    /// Scale factor applied to dimensions and nnz.
    pub scale: f64,
}

impl Workload {
    /// Builds one workload from a catalog entry at a base nnz budget.
    ///
    /// The device-scale factor is the *dimension* scale (`target /
    /// paper_nnz`), not the realized nnz ratio — density-capped tensors
    /// (Vast) keep dimensions scaled by the target factor, and the device
    /// parameters must match the dimensions, which set kernel sizes.
    pub fn from_entry(entry: cstf_data::CatalogEntry, base: usize, seed: u64) -> Self {
        let target = entry.default_target_nnz(base);
        let tensor = entry.generate_scaled(target, seed);
        let scale = target as f64 / entry.paper_nnz as f64;
        Self { entry, tensor, scale }
    }

    /// A device spec scaled to this workload.
    pub fn device_spec(&self, spec: &cstf_device::DeviceSpec) -> cstf_device::DeviceSpec {
        spec.scaled(self.scale)
    }
}

/// Generates all ten Table 2 workloads at a base nnz budget.
pub fn catalog_workloads(base: usize, seed: u64) -> Vec<Workload> {
    cstf_data::table2().into_iter().map(|e| Workload::from_entry(e, base, seed)).collect()
}

/// Parses a `--base N` style CLI override with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cstf_core::presets;
    use cstf_data::by_name;

    fn small_tensor() -> SparseTensor {
        by_name("NIPS").unwrap().generate_scaled(8_000, 1)
    }

    #[test]
    fn harness_reports_nonzero_phases() {
        let x = small_tensor();
        let r = run_preset(&presets::splatt_cpu(16), &x, 2);
        assert!(r.per_iter.gram > 0.0);
        assert!(r.per_iter.mttkrp > 0.0);
        assert!(r.per_iter.update > 0.0);
        assert!(r.per_iter.normalize > 0.0);
        assert!(r.per_iter_total() > 0.0);
        assert!(r.wall_s > 0.0);
    }

    #[test]
    fn cpu_has_no_transfer_cost_gpu_does() {
        let x = small_tensor();
        let cpu = run_preset(&presets::splatt_cpu(16), &x, 1);
        assert_eq!(cpu.transfer, 0.0);
        let gpu = run_preset(&presets::cstf_gpu(16, cstf_device::DeviceSpec::a100()), &x, 1);
        assert!(gpu.transfer > 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let x = small_tensor();
        let r = run_preset(&presets::cstf_gpu(16, cstf_device::DeviceSpec::h100()), &x, 1);
        let s: f64 = r.per_iter.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repetitions_on_a_shared_device_do_not_double_count() {
        // The modeled cost is deterministic, so two identical repetitions
        // must report identical per-iteration times — any residue from the
        // first run leaking into the second would show up here.
        let x = small_tensor();
        let preset = presets::cstf_gpu(16, cstf_device::DeviceSpec::h100());
        let a = run_preset(&preset, &x, 2);
        let b = run_preset(&preset, &x, 2);
        assert_eq!(a.per_iter_total(), b.per_iter_total());
        assert_eq!(a.transfer, b.transfer);
        // And the capture really was cleared: the device holds nothing now.
        assert_eq!(preset.device.total_seconds(), 0.0);
    }

    #[test]
    fn run_summary_mirrors_the_breakdown() {
        let x = small_tensor();
        let r = run_preset(&presets::cstf_gpu(8, cstf_device::DeviceSpec::a100()), &x, 2);
        assert_eq!(r.summary.iterations, 2);
        assert_eq!(r.summary.nnz, x.nnz() as u64);
        assert_eq!(r.summary.rank, 8);
        assert!((r.summary.per_iter_modeled_s() - r.per_iter_total()).abs() < 1e-15);
        assert!((r.summary.transfer_s - r.transfer).abs() < 1e-18);
        // And it round-trips through the run.json body.
        let back = cstf_telemetry::RunSummary::from_json(&r.summary.to_json_pretty()).unwrap();
        assert_eq!(back, r.summary);
    }

    #[test]
    fn speedup_is_reciprocal_symmetric() {
        let x = small_tensor();
        let a = run_preset(&presets::splatt_cpu(16), &x, 1);
        let b = run_preset(&presets::cstf_gpu(16, cstf_device::DeviceSpec::h100()), &x, 1);
        let s = b.speedup_over(&a);
        assert!((a.speedup_over(&b) - 1.0 / s).abs() < 1e-12);
    }
}
