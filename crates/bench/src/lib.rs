//! # cstf-bench
//!
//! The benchmark harness: shared machinery for the figure/table binaries
//! (one binary per paper artifact, see DESIGN.md §3) and the Criterion
//! wall-clock benches.
//!
//! The harness runs a [`SystemPreset`] (device + driver configuration) on a
//! catalog tensor, reads the device profiler's per-phase modeled times, and
//! reports per-iteration numbers exactly the way the paper's figures do
//! (end-to-end per-iteration, phase breakdowns, and phase-vs-phase
//! speedups).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod perf_trajectory;
pub mod report;

pub use harness::{
    arg_usize, catalog_workloads, run_preset, run_preset_dense, PhaseBreakdown, RunResult, Workload,
};
pub use perf_trajectory::{BenchPerf, BenchPerfEntry, PERF_TRAJECTORY_SCHEMA_VERSION};
pub use report::{geometric_mean, print_header, print_row, write_json};
