//! Wall-clock ADMM variant benchmark: generic vs +OF vs +PI vs cuADMM
//! (Figure 4's ablation, measured on the host), plus the inner-iteration
//! count trade-off (ablation #4 in DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cstf_core::admm::{admm_update, AdmmConfig, AdmmWorkspace};
use cstf_core::auntf::seeded_factors;
use cstf_device::{Device, DeviceSpec};
use cstf_linalg::{gram, Mat};

fn setup(rows: usize, rank: usize) -> (Mat, Mat, Mat) {
    let factors = seeded_factors(&[rows, 64, 64], rank, 3);
    let mut s = gram::gram(&factors[1]);
    cstf_linalg::hadamard_in_place(&mut s, &gram::gram(&factors[2]));
    let m = cstf_linalg::matmul(&factors[0], &s);
    (m, s, factors.into_iter().next().unwrap())
}

fn bench_admm_variants(c: &mut Criterion) {
    let (m, s, h0) = setup(40_000, 32);
    let dev = Device::new(DeviceSpec::h100());

    let mut group = c.benchmark_group("admm_variants_I40k_R32");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (name, fusion, pi) in [
        ("generic", false, false),
        ("of", true, false),
        ("pi", false, true),
        ("cuadmm", true, true),
    ] {
        let cfg = AdmmConfig {
            operation_fusion: fusion,
            pre_inversion: pi,
            inner_iters: 10,
            tol: 0.0,
            ..AdmmConfig::cuadmm()
        };
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    (
                        h0.clone(),
                        Mat::zeros(h0.rows(), h0.cols()),
                        AdmmWorkspace::new(h0.rows(), h0.cols()),
                    )
                },
                |(mut h, mut u, mut ws)| admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("admm_inner_iters");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for inner in [1usize, 5, 10, 20] {
        let cfg = AdmmConfig { inner_iters: inner, tol: 0.0, ..AdmmConfig::cuadmm() };
        group.bench_function(BenchmarkId::from_parameter(inner), |b| {
            b.iter_batched(
                || {
                    (
                        h0.clone(),
                        Mat::zeros(h0.rows(), h0.cols()),
                        AdmmWorkspace::new(h0.rows(), h0.cols()),
                    )
                },
                |(mut h, mut u, mut ws)| admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Fused multi-kernel vs single-sweep inner iteration (the ISSUE's
/// acceptance benchmark: the sweep should win by >= 1.3x at R = 32 thanks
/// to ~6 -> ~2 full-matrix traversals and 4 -> 1 fork/joins per iteration).
fn bench_admm_fused(c: &mut Criterion) {
    let (m, s, h0) = setup(40_000, 32);
    let dev = Device::new(DeviceSpec::h100());

    let mut group = c.benchmark_group("admm_fused_I40k_R32");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (name, sweep) in [("multi_kernel", false), ("single_sweep", true)] {
        let cfg = AdmmConfig { single_sweep: sweep, ..AdmmConfig::cuadmm() };
        // Reuse one workspace across samples so steady-state (zero-alloc)
        // behavior is what gets measured.
        let mut ws = AdmmWorkspace::new(h0.rows(), h0.cols());
        group.bench_function(name, |b| {
            b.iter_batched(
                || (h0.clone(), Mat::zeros(h0.rows(), h0.cols())),
                |(mut h, mut u)| admm_update(&dev, &cfg, &m, &s, &mut h, &mut u, &mut ws),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admm_variants, bench_admm_fused);
criterion_main!(benches);
