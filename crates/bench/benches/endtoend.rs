//! Wall-clock end-to-end factorization benchmark: one full outer iteration
//! of the cSTF pipeline under each system preset (the measured counterpart
//! of Figs. 5/6, on the host machine).

use criterion::{criterion_group, criterion_main, Criterion};

use cstf_core::presets;
use cstf_core::Auntf;
use cstf_data::by_name;
use cstf_device::DeviceSpec;

fn bench_endtoend(c: &mut Criterion) {
    let x = by_name("NELL2").unwrap().generate_scaled(80_000, 9);

    let mut group = c.benchmark_group("endtoend_nell2_1iter");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    for (name, preset) in [
        ("splatt_cpu_csf", presets::splatt_cpu(32)),
        ("cstf_gpu_blco_cuadmm", presets::cstf_gpu(32, DeviceSpec::h100())),
        ("cstf_gpu_blco_generic", presets::cstf_gpu_generic_admm(32, DeviceSpec::h100())),
        ("cstf_gpu_mu", presets::cstf_gpu_mu(32, DeviceSpec::h100())),
        ("cstf_gpu_hals", presets::cstf_gpu_hals(32, DeviceSpec::h100())),
    ] {
        let mut cfg = preset.config.clone();
        cfg.max_iters = 1;
        cfg.compute_fit = false;
        let auntf = Auntf::new(x.clone(), cfg);
        group.bench_function(name, |b| b.iter(|| auntf.factorize(&preset.device)));
    }
    group.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
