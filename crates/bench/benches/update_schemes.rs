//! Wall-clock comparison of the three constraint update schemes (ADMM, MU,
//! HALS) on one subproblem — the measured counterpart of Figs. 9/10.

use criterion::{criterion_group, criterion_main, Criterion};

use cstf_core::admm::{admm_update, AdmmConfig, AdmmWorkspace};
use cstf_core::auntf::seeded_factors;
use cstf_core::hals::{hals_update, HalsConfig};
use cstf_core::mu::{mu_update, MuConfig};
use cstf_device::{Device, DeviceSpec};
use cstf_linalg::{gram, Mat};

fn bench_update_schemes(c: &mut Criterion) {
    let rows = 30_000;
    let rank = 32;
    let factors = seeded_factors(&[rows, 64, 64], rank, 7);
    let mut s = gram::gram(&factors[1]);
    cstf_linalg::hadamard_in_place(&mut s, &gram::gram(&factors[2]));
    let m = cstf_linalg::matmul(&factors[0], &s);
    let h0 = factors[0].clone();
    let dev = Device::new(DeviceSpec::a100());

    let mut group = c.benchmark_group("update_schemes_I30k_R32");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    let admm_cfg = AdmmConfig { inner_iters: 10, tol: 0.0, ..AdmmConfig::cuadmm() };
    group.bench_function("cuadmm_10iters", |b| {
        b.iter_batched(
            || (h0.clone(), Mat::zeros(rows, rank), AdmmWorkspace::new(rows, rank)),
            |(mut h, mut u, mut ws)| admm_update(&dev, &admm_cfg, &m, &s, &mut h, &mut u, &mut ws),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("mu_1sweep", |b| {
        b.iter_batched(
            || h0.clone(),
            |mut h| mu_update(&dev, &MuConfig::default(), &m, &s, &mut h),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("hals_1sweep", |b| {
        b.iter_batched(
            || h0.clone(),
            |mut h| hals_update(&dev, &HalsConfig::default(), &m, &s, &mut h),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_update_schemes);
criterion_main!(benches);
