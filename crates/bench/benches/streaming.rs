//! Wall-clock streaming ingest benchmark: slice-at-a-time tracking
//! throughput of the CP-stream-style extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cstf_device::{Device, DeviceSpec};
use cstf_streaming::{SliceTensor, StreamingConfig, StreamingCstf};

fn make_slice(shape: &[usize], nnz: usize, seed: u64) -> SliceTensor {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut seen = std::collections::HashSet::new();
    let mut idx = vec![Vec::new(); shape.len()];
    let mut vals = Vec::new();
    while vals.len() < nnz {
        let c: Vec<u32> = shape.iter().map(|&d| next() % d as u32).collect();
        if seen.insert(c.clone()) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(f64::from(next() % 32) * 0.25 + 0.25);
        }
    }
    SliceTensor::new(shape.to_vec(), idx, vals)
}

fn bench_streaming(c: &mut Criterion) {
    let shape = vec![500, 400];
    let mut group = c.benchmark_group("streaming_ingest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    for nnz in [1_000usize, 10_000, 50_000] {
        let slices: Vec<SliceTensor> = (0..4).map(|t| make_slice(&shape, nnz, 1000 + t)).collect();
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_function(BenchmarkId::from_parameter(nnz), |b| {
            b.iter_batched(
                || {
                    (
                        Device::new(DeviceSpec::h100()),
                        StreamingCstf::new(
                            shape.clone(),
                            StreamingConfig { rank: 16, ..Default::default() },
                        ),
                    )
                },
                |(dev, mut tracker)| {
                    for s in &slices {
                        tracker.ingest(&dev, s).expect("fault-free ingest");
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
