//! Wall-clock MTTKRP benchmark: COO vs CSF vs ALTO vs BLCO on the host.
//!
//! Complements the modeled-figure binaries with real measured kernel time
//! of the Rust implementations (format ablation #3 in DESIGN.md §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cstf_core::auntf::seeded_factors;
use cstf_data::SynthSpec;
use cstf_formats::{mttkrp_coo_parallel, Alto, Blco, Csf, HiCoo};
use cstf_tensor::SparseTensor;

/// Fiber-skewed tensor: eight hot mode-0 slices hold ~70% of the
/// nonzeros — the regime the construction-time fiber/row binning targets
/// and uniform chunking mishandles.
fn skewed_tensor(nnz: usize) -> SparseTensor {
    let shape = vec![400usize, 300, 200];
    let mut state: u64 = 0xb1a5_cafe;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut seen = std::collections::HashSet::new();
    let mut idx = vec![Vec::new(); 3];
    let mut vals = Vec::new();
    for k in 0..nnz {
        let i0 = if k % 10 < 7 { next() % 8 } else { next() % shape[0] as u32 };
        let c = [i0, next() % shape[1] as u32, next() % shape[2] as u32];
        if seen.insert(c) {
            for (m, &ci) in c.iter().enumerate() {
                idx[m].push(ci);
            }
            vals.push(f64::from(next() % 100) / 25.0 + 0.04);
        }
    }
    SparseTensor::new(shape, idx, vals)
}

fn bench_mttkrp(c: &mut Criterion) {
    let spec = SynthSpec {
        shape: vec![300, 250, 200],
        nnz: 200_000,
        rank: 8,
        noise: 0.02,
        factor_sparsity: 0.2,
        seed: 17,
    };
    let x = cstf_data::generate(&spec);
    let rank = 32;
    let factors = seeded_factors(x.shape(), rank, 5);

    let csf = Csf::from_coo(&x, 0);
    let alto = Alto::from_coo(&x);
    let blco = Blco::from_coo(&x);
    let hicoo = HiCoo::from_coo(&x);

    let mut group = c.benchmark_group("mttkrp_mode0");
    group.throughput(Throughput::Elements(x.nnz() as u64));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function(BenchmarkId::new("coo_parallel", x.nnz()), |b| {
        b.iter(|| mttkrp_coo_parallel(&x, &factors, 0))
    });
    group.bench_function(BenchmarkId::new("csf", x.nnz()), |b| b.iter(|| csf.mttkrp(&factors)));
    group
        .bench_function(BenchmarkId::new("alto", x.nnz()), |b| b.iter(|| alto.mttkrp(&factors, 0)));
    group.bench_function(BenchmarkId::new("blco_atomic", x.nnz()), |b| {
        b.iter(|| blco.mttkrp(&factors, 0))
    });
    group.bench_function(BenchmarkId::new("hicoo", x.nnz()), |b| {
        b.iter(|| hicoo.mttkrp(&factors, 0))
    });
    group.bench_function(BenchmarkId::new("csf_onemode_nonroot", x.nnz()), |b| {
        b.iter(|| csf.mttkrp_any(&factors, 1))
    });
    group.finish();

    // Load-balance microbench on a fiber-skewed tensor: CSF's binned
    // schedule, and BLCO's owner-computes kernel, whose single writer per
    // output row makes row skew contention-free by construction.
    let xs = skewed_tensor(250_000);
    let fs = seeded_factors(xs.shape(), rank, 5);
    let blco_skew = Blco::from_coo(&xs);
    let csf_binned = Csf::from_coo(&xs, 0);

    let mut group = c.benchmark_group("mttkrp_skewed");
    group.throughput(Throughput::Elements(xs.nnz() as u64));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("blco_owner_computes", xs.nnz()), |b| {
        b.iter(|| blco_skew.mttkrp(&fs, 0))
    });
    group.bench_function(BenchmarkId::new("csf_fiber_binned", xs.nnz()), |b| {
        b.iter(|| csf_binned.mttkrp(&fs))
    });
    group.finish();

    // Rank sweep on the GPU-format kernel (the §5.1 parameter).
    let mut group = c.benchmark_group("mttkrp_blco_rank_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for rank in [16usize, 32, 64] {
        let f = seeded_factors(x.shape(), rank, 5);
        group.bench_function(BenchmarkId::from_parameter(rank), |b| b.iter(|| blco.mttkrp(&f, 0)));
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp);
criterion_main!(benches);
