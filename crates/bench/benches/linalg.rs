//! Wall-clock dense-kernel benchmarks: the GEMM / Gram / Cholesky / solve
//! primitives every update scheme is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cstf_linalg::{gemm, gram, simd, Cholesky, Mat};

fn bench_linalg(c: &mut Criterion) {
    let rank = 32;
    let rows = 100_000;
    let tall = Mat::from_fn(rows, rank, |i, j| ((i * 31 + j) % 17) as f64 * 0.1);
    let small = Mat::from_fn(rank, rank, |i, j| ((i + j * 3) % 7) as f64 * 0.2);

    let mut group = c.benchmark_group("linalg");
    group.throughput(Throughput::Elements((rows * rank) as u64));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));

    group.bench_function("gemm_100k_by_32x32", |b| {
        let mut out = Mat::zeros(rows, rank);
        b.iter(|| gemm::gemm(1.0, &tall, &small, 0.0, &mut out))
    });

    group.bench_function("gram_100k_x32", |b| b.iter(|| gram::gram(&tall)));

    let spd = {
        let mut g = gram::gram(&tall);
        g.add_diagonal(1.0);
        g
    };
    group.bench_function("cholesky_factor_32", |b| b.iter(|| Cholesky::factor(&spd).unwrap()));

    let chol = Cholesky::factor(&spd).unwrap();
    group.bench_function("cholesky_inverse_32", |b| b.iter(|| chol.inverse()));

    group.bench_function("solve_rows_100k_rhs", |b| {
        b.iter_batched(
            || tall.clone(),
            |mut rhs| chol.solve_rows(&mut rhs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();

    // PI-vs-TRSM on the host: the measured counterpart of the Fig. 4
    // pre-inversion argument.
    let mut group = c.benchmark_group("solve_paths_100k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let inv = chol.inverse();
    group.bench_function("trsm_path", |b| {
        b.iter_batched(
            || tall.clone(),
            |mut rhs| chol.solve_rows(&mut rhs),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("preinversion_gemm_path", |b| {
        let mut out = Mat::zeros(rows, rank);
        b.iter(|| gemm::gemm(1.0, &tall, &inv, 0.0, &mut out))
    });
    group.finish();

    // Scalar vs lane backend on the same dense kernels. On stable (the
    // `simd` feature off) both rows measure the scalar bodies and parity
    // is expected; under `cargo +nightly bench --features simd` the gap
    // is the explicit-f64x4 win at identical bit patterns.
    let mut group = c.benchmark_group("dense_backend");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (label, backend) in [("scalar", simd::Backend::Scalar), ("lanes", simd::Backend::Lanes)] {
        simd::set_backend_override(Some(backend));
        group.bench_function(BenchmarkId::new("gemm_100k_by_32x32", label), |b| {
            let mut out = Mat::zeros(rows, rank);
            b.iter(|| gemm::gemm(1.0, &tall, &small, 0.0, &mut out))
        });
        group.bench_function(BenchmarkId::new("gram_100k_x32", label), |b| {
            b.iter(|| gram::gram(&tall))
        });
    }
    simd::set_backend_override(None);
    group.finish();

    // Rank sweep for the Gram kernel.
    let mut group = c.benchmark_group("gram_rank_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for rank in [16usize, 32, 64] {
        let m = Mat::from_fn(50_000, rank, |i, j| ((i + j) % 13) as f64 * 0.1);
        group.bench_function(BenchmarkId::from_parameter(rank), |b| b.iter(|| gram::gram(&m)));
    }
    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
