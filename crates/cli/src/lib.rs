//! # cstf-cli
//!
//! The `cstf` command-line front-end: factorize FROSTT `.tns` files or
//! Table 2 catalog analogues, inspect tensors and formats, list the
//! simulated devices, and query the hybrid placement model — all from the
//! shell. See `cstf help` for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse, ArgError, ParsedArgs};
pub use commands::{dispatch, help_text, CliError};
