//! Minimal dependency-free argument parsing for the `cstf` binary.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// `--key value` pairs.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    pub flags: Vec<String>,
    /// Non-flag tokens after the subcommand (e.g. `cstf report DIR`).
    pub positionals: Vec<String>,
}

/// Errors from parsing or validating the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` given without a value where one is required.
    MissingValue(String),
    /// An option failed to parse into the expected type.
    BadValue {
        /// Which option.
        key: String,
        /// The offending text.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required option is absent.
    MissingOption(&'static str),
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given; try `cstf help`"),
            ArgError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "option --{key}: {value:?} is not a valid {expected}")
            }
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::UnknownCommand(c) => {
                write!(f, "unknown subcommand {c:?}; try `cstf help`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Known boolean switches (everything else expects a value).
const SWITCHES: &[&str] = &["json", "quiet", "fit", "resume"];

/// Parses `argv[1..]`.
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut out = ParsedArgs::default();
    let mut it = args.iter().peekable();
    while let Some(tok) = it.next() {
        if let Some(key) = tok.strip_prefix("--") {
            if SWITCHES.contains(&key) {
                out.flags.push(key.to_string());
            } else {
                let value = it.next().ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                out.options.insert(key.to_string(), value.clone());
            }
        } else if out.command.is_empty() {
            out.command = tok.clone();
        } else {
            out.positionals.push(tok.clone());
        }
    }
    if out.command.is_empty() {
        return Err(ArgError::MissingCommand);
    }
    Ok(out)
}

impl ParsedArgs {
    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// True when `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = parse(&sv(&["factorize", "--rank", "16", "--json", "--device", "h100"])).unwrap();
        assert_eq!(p.command, "factorize");
        assert_eq!(p.get_or("rank", "8"), "16");
        assert_eq!(p.get_or("device", "cpu"), "h100");
        assert!(p.has_flag("json"));
        assert!(!p.has_flag("quiet"));
    }

    #[test]
    fn positionals_follow_the_command() {
        let p = parse(&sv(&["report", "out/telemetry", "--json"])).unwrap();
        assert_eq!(p.command, "report");
        assert_eq!(p.positionals, vec!["out/telemetry".to_string()]);
        assert!(p.has_flag("json"));
    }

    #[test]
    fn missing_command_is_error() {
        assert_eq!(parse(&sv(&["--rank", "4"])).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn dangling_option_is_error() {
        assert!(matches!(
            parse(&sv(&["run", "--rank"])).unwrap_err(),
            ArgError::MissingValue(k) if k == "rank"
        ));
    }

    #[test]
    fn typed_parse_with_default() {
        let p = parse(&sv(&["x", "--rank", "32"])).unwrap();
        assert_eq!(p.parse_or("rank", 8usize, "integer").unwrap(), 32);
        assert_eq!(p.parse_or("iters", 10usize, "integer").unwrap(), 10);
    }

    #[test]
    fn typed_parse_bad_value() {
        let p = parse(&sv(&["x", "--rank", "banana"])).unwrap();
        assert!(matches!(
            p.parse_or("rank", 8usize, "integer").unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }
}
