//! The `cstf` subcommands.

use std::io::Write;

use cstf_core::admm::AdmmConfig;
use cstf_core::auntf::TensorFormat;
use cstf_core::hybrid::{recommend_placement, Placement, WorkloadShape};
use cstf_core::{
    Auntf, AuntfConfig, CheckpointConfig, Constraint, HalsConfig, MuConfig, UpdateMethod,
};
use cstf_device::{
    compare_baselines, compare_measured_band, Device, DeviceGroup, DeviceSpec, FaultPlan,
    KernelBaseline, KernelClass, KernelCost, LinkModel, PerfBaseline, Phase, RunCapture,
};
use cstf_telemetry::{
    convergence, spans, Footprint, HeapSummary, IterationRecord, MemoryFootprint, Registry,
    RunSummary,
};
use cstf_tensor::SparseTensor;

use crate::args::{ArgError, ParsedArgs};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgError),
    /// I/O or parse problem with an input tensor.
    Input(String),
    /// The factorization itself failed (exhausted fault retries, numerical
    /// breakdown, checkpoint problem).
    Factorize(cstf_core::FactorizeError),
    /// `perf compare` found counter drift against the recorded baseline.
    /// Distinct so the binary can exit with a dedicated code (3) that CI
    /// distinguishes from argument (2) and runtime (1) failures.
    Drift(String),
    /// `memstat` found a configuration that does not fit its memory budget.
    /// Dedicated exit code (4) so CI fit gates can distinguish "does not
    /// fit" from runtime failures; the deficit has already been written to
    /// the report when this is returned.
    Unfit(String),
}

impl CliError {
    /// Process exit code for this error: `3` for perf-gate drift, `4` for a
    /// memstat fit failure, `1` for everything else reaching `dispatch`
    /// (argument errors caught before dispatch exit `2` in `main`).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Drift(_) => 3,
            CliError::Unfit(_) => 4,
            _ => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Input(m) => write!(f, "{m}"),
            CliError::Factorize(e) => write!(f, "factorization failed: {e}"),
            CliError::Drift(m) => write!(f, "perf gate failed: {m}"),
            CliError::Unfit(m) => write!(f, "memory fit failed: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<cstf_core::FactorizeError> for CliError {
    fn from(e: cstf_core::FactorizeError) -> Self {
        CliError::Factorize(e)
    }
}

/// Dispatches a parsed command, writing human output to `out`.
pub fn dispatch(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    match p.command.as_str() {
        "factorize" => cmd_factorize(p, out),
        "analyze" => cmd_analyze(p, out),
        "perf" => cmd_perf(p, out),
        "report" => cmd_report(p, out),
        "critical-path" => cmd_critical_path(p, out),
        "memstat" => cmd_memstat(p, out),
        "info" => cmd_info(p, out),
        "datasets" => cmd_datasets(out),
        "devices" => cmd_devices(out),
        "placement" => cmd_placement(p, out),
        "help" => {
            let _ = write!(out, "{}", help_text());
            Ok(())
        }
        other => Err(ArgError::UnknownCommand(other.to_string()).into()),
    }
}

/// Usage text.
pub fn help_text() -> String {
    "cstf — constrained sparse tensor factorization (cSTF-rs)\n\
     \n\
     USAGE: cstf <command> [options]\n\
     \n\
     COMMANDS:\n\
       factorize   run a constrained CP factorization\n\
       analyze     per-kernel roofline attribution table from measured\n\
                   counters, checked against the paper's Eqs. 3-5\n\
       perf        record|compare a counter-exact performance baseline\n\
                   (compare exits 3 on drift; see --baseline-dir)\n\
       report      render the artifacts of a --telemetry run (DIR positional)\n\
       critical-path  causal op-DAG analysis of a --telemetry run: modeled\n\
                   critical path, per-device busy/stall/idle, link overlap\n\
                   and what-if projections (DIR positional)\n\
       memstat     byte-exact footprint + device-occupancy fit plan for a\n\
                   tensor (FILE positional or --input/--dataset)\n\
       info        inspect a tensor (shape, nnz, density, format storage)\n\
       datasets    list the Table 2 catalog\n\
       devices     list the simulated device specs (Table 1)\n\
       placement   recommend CPU/GPU placement for a workload\n\
       help        this text\n\
     \n\
     COMMON OPTIONS:\n\
       --input FILE         FROSTT .tns file\n\
       --dataset NAME       Table 2 analogue (e.g. NELL2); with --nnz N budget\n\
       --rank R             factorization rank        (default 16)\n\
       --iters N            outer iterations          (default 20)\n\
       --update METHOD      cuadmm|cuadmm-fused|admm|mu|hals (default cuadmm)\n\
       --constraint C       nonneg|none|simplex|l1:MU|ridge:MU|box:LO:HI (default nonneg)\n\
       --format F           coo|csf|csf1|hicoo|alto|blco (default blco)\n\
       --device D           cpu|a100|h100             (default h100)\n\
       --seed N             RNG seed                  (default 0)\n\
       --json               emit a JSON report instead of text\n\
       --trace FILE         write a chrome://tracing kernel timeline\n\
       --telemetry DIR      write run.json, events.jsonl, trace.json and\n\
                            metrics.prom into DIR (then: cstf report DIR)\n\
     \n\
     MULTI-GPU (factorize):\n\
       --gpus N             shard across N simulated devices   (default 1)\n\
       --nvlink GBS         interconnect bandwidth in GB/s     (default 300)\n\
                            factors are bitwise-identical to --gpus 1\n\
     \n\
     OUT-OF-CORE (factorize, single device):\n\
       --tiles K            stream the tensor through the device in K\n\
                            nnz-balanced tiles per mode (default 1 = in-core);\n\
                            factors are bitwise-identical to --tiles 1; with\n\
                            --input the .tns is read tile-by-tile so the host\n\
                            never materialises the full tensor\n\
       --memory-budget B    pick the smallest K whose streaming run fits in\n\
                            B bytes (two tile buffers + resident factors);\n\
                            exits 4 if even tiling cannot fit\n\
     \n\
     PERF OBSERVATORY (analyze / perf):\n\
       analyze [factorize options] [--ai-tol F]\n\
                            run the config, print per-(phase,kernel,mode)\n\
                            launches/flops/bytes/AI/bound; with --update admm\n\
                            also the per-mode Eq. 3-5 deviation check\n\
                            (flagged beyond --ai-tol, default 0.05)\n\
       perf record [opts]   snapshot per-key counters into\n\
                            --baseline-dir (default results/baselines)\n\
       perf compare [opts]  re-run and diff against the recorded baseline;\n\
                            counters must match exactly — exit 3 on drift\n\
       --measured-band F    also fail compare when the aggregate\n\
                            measured/modeled time ratio grew by more than\n\
                            fraction F vs the baseline (default 0 = off)\n\
     \n\
     MEMORY OBSERVATORY (memstat):\n\
       memstat [FILE] [--format F --rank R --gpus N --device D --json]\n\
                            byte-exact heap footprint per format (all five\n\
                            when --format is omitted), occupancy fraction\n\
                            against the device's DRAM, and a fit verdict\n\
       --memory-budget B    check against B bytes instead of device DRAM;\n\
                            a config over budget exits 4 with the exact\n\
                            deficit and the smallest --tiles K that fits\n\
                            (suggested_tiles in --json); with --gpus N the\n\
                            fit is the max over every mode's sharding\n\
     \n\
     CRITICAL-PATH OBSERVATORY (critical-path):\n\
       critical-path DIR [--json]\n\
                            rebuild the causal op DAG from DIR/ops.jsonl\n\
                            (written by --telemetry) and print the modeled\n\
                            critical path, per-device busy/stall/idle\n\
                            attribution, per-link overlap efficiency and\n\
                            the three standard what-if projections; output\n\
                            is byte-deterministic across runs\n\
       --what-if LIST       also project a custom combination, e.g.\n\
                            nvlink=inf,pcie=0 (tokens: nvlink=inf pcie=0\n\
                            overlap=perfect)\n\
     \n\
     FAULT TOLERANCE (factorize):\n\
       --faults SPEC        inject seeded device faults, e.g.\n\
                            seed=1,launch=0.05,nan=0.02,transfer=0.1,oom=12,max=7\n\
                            group-scoped kinds (with --gpus N) shard-target\n\
                            named members and make the run elastic:\n\
                              device-loss:D@itN   member D dies at outer iter N\n\
                              device-loss:D@opN   ... at its Nth kernel launch\n\
                              straggler:DxF       member D runs F times slower\n\
                              link-degrade:A-BxF  edge A-B carries F x latency\n\
                            a lost member is retried, then retired: the run\n\
                            reshards to the survivors and finishes bitwise-\n\
                            identical to a clean run (ElasticityReport in the\n\
                            output; cstf_group_* metrics under --telemetry)\n\
       --checkpoint DIR     write checksummed snapshots into DIR\n\
       --checkpoint-every K snapshot every K outer iterations (default 5)\n\
       --resume             restart from the newest valid snapshot in\n\
                            --checkpoint DIR (bitwise-identical replay)\n"
        .to_string()
}

fn load_tensor(p: &ParsedArgs) -> Result<SparseTensor, CliError> {
    if let Some(path) = p.options.get("input") {
        cstf_tensor::read_tns_file(path)
            .map_err(|e| CliError::Input(format!("failed to read {path}: {e}")))
    } else if let Some(name) = p.options.get("dataset") {
        let entry = cstf_data::by_name(name)
            .ok_or_else(|| CliError::Input(format!("unknown dataset {name:?}")))?;
        let nnz = p.parse_or("nnz", 50_000usize, "integer")?;
        Ok(entry.generate_scaled(nnz, p.parse_or("seed", 0u64, "integer")?))
    } else {
        Err(ArgError::MissingOption("input (or --dataset)").into())
    }
}

fn parse_constraint(text: &str) -> Result<Constraint, CliError> {
    let mut parts = text.split(':');
    let head = parts.next().unwrap_or("");
    let bad = |expected: &'static str| {
        CliError::Args(ArgError::BadValue {
            key: "constraint".into(),
            value: text.into(),
            expected,
        })
    };
    match head {
        "nonneg" => Ok(Constraint::NonNegative),
        "simplex" => Ok(Constraint::Simplex),
        "none" => Ok(Constraint::Unconstrained),
        "l1" => {
            let mu = parts.next().ok_or_else(|| bad("l1:MU"))?;
            Ok(Constraint::SparseL1 { mu: mu.parse().map_err(|_| bad("l1:MU"))? })
        }
        "ridge" => {
            let mu = parts.next().ok_or_else(|| bad("ridge:MU"))?;
            Ok(Constraint::Ridge { mu: mu.parse().map_err(|_| bad("ridge:MU"))? })
        }
        "box" => {
            let lo = parts.next().ok_or_else(|| bad("box:LO:HI"))?;
            let hi = parts.next().ok_or_else(|| bad("box:LO:HI"))?;
            Ok(Constraint::Box {
                lo: lo.parse().map_err(|_| bad("box:LO:HI"))?,
                hi: hi.parse().map_err(|_| bad("box:LO:HI"))?,
            })
        }
        _ => Err(bad("nonneg|none|simplex|l1:MU|ridge:MU|box:LO:HI")),
    }
}

fn parse_device(text: &str) -> Result<DeviceSpec, CliError> {
    match text {
        "cpu" | "xeon" => Ok(DeviceSpec::icelake_xeon()),
        "a100" => Ok(DeviceSpec::a100()),
        "h100" => Ok(DeviceSpec::h100()),
        _ => Err(CliError::Args(ArgError::BadValue {
            key: "device".into(),
            value: text.into(),
            expected: "cpu|a100|h100",
        })),
    }
}

fn parse_format(text: &str) -> Result<TensorFormat, CliError> {
    match text {
        "coo" => Ok(TensorFormat::Coo),
        "csf" => Ok(TensorFormat::Csf),
        "csf1" | "csfone" => Ok(TensorFormat::CsfOne),
        "hicoo" => Ok(TensorFormat::HiCoo),
        "alto" => Ok(TensorFormat::Alto),
        "blco" => Ok(TensorFormat::Blco),
        _ => Err(CliError::Args(ArgError::BadValue {
            key: "format".into(),
            value: text.into(),
            expected: "coo|csf|csf1|hicoo|alto|blco",
        })),
    }
}

/// The run configuration shared by `factorize`, `analyze` and `perf`:
/// everything needed to execute the decomposition plus the names the perf
/// artifacts are keyed by.
struct RunSetup {
    cfg: AuntfConfig,
    spec: DeviceSpec,
    gpus: usize,
    nvlink_gbs: f64,
    rank: usize,
    update_name: String,
    format_name: String,
}

/// Builds the shared run configuration from the common factorize options.
fn build_setup(p: &ParsedArgs) -> Result<RunSetup, CliError> {
    let rank = p.parse_or("rank", 16usize, "integer")?;
    let iters = p.parse_or("iters", 20usize, "integer")?;
    let constraint = parse_constraint(p.get_or("constraint", "nonneg"))?;
    let update_name = p.get_or("update", "cuadmm").to_string();
    let update = match update_name.as_str() {
        "cuadmm" => UpdateMethod::Admm(AdmmConfig { constraint, ..AdmmConfig::cuadmm() }),
        "cuadmm-fused" => {
            UpdateMethod::Admm(AdmmConfig { constraint, ..AdmmConfig::cuadmm_fused() })
        }
        "admm" => UpdateMethod::Admm(AdmmConfig { constraint, ..AdmmConfig::generic() }),
        "mu" => UpdateMethod::Mu(MuConfig::default()),
        "hals" => UpdateMethod::Hals(HalsConfig::default()),
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "update".into(),
                value: other.into(),
                expected: "cuadmm|cuadmm-fused|admm|mu|hals",
            }))
        }
    };
    let format_name = p.get_or("format", "blco").to_string();
    let cfg = AuntfConfig {
        rank,
        max_iters: iters,
        fit_tol: p.parse_or("fit-tol", 0.0f64, "number")?,
        update,
        seed: p.parse_or("seed", 0u64, "integer")?,
        format: parse_format(&format_name)?,
        tiles: p.parse_or("tiles", 1usize, "integer")?,
        ..Default::default()
    };
    let spec = parse_device(p.get_or("device", "h100"))?;
    let gpus = p.parse_or("gpus", 1usize, "integer")?;
    let nvlink_gbs = p.parse_or("nvlink", 300.0f64, "number")?;
    Ok(RunSetup { cfg, spec, gpus, nvlink_gbs, rank, update_name, format_name })
}

/// Dataset label for perf artifacts: the catalog name (lowercased), the
/// input file stem, or `"synthetic"`.
fn dataset_label(p: &ParsedArgs) -> String {
    if let Some(name) = p.options.get("dataset") {
        name.to_lowercase()
    } else if let Some(path) = p.options.get("input") {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().to_lowercase())
            .unwrap_or_else(|| "synthetic".to_string())
    } else {
        "synthetic".to_string()
    }
}

fn cmd_factorize(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let RunSetup { mut cfg, spec, gpus, nvlink_gbs, rank, format_name, .. } = build_setup(p)?;
    let budget = parse_memory_budget(p)?;
    let trace_path = p.options.get("trace").cloned();
    let telemetry_dir = p.options.get("telemetry").cloned();
    let fault_plan = match p.options.get("faults") {
        Some(spec) => Some(
            cstf_device::FaultPlan::parse(spec)
                .map_err(|e| CliError::Input(format!("bad --faults spec: {e}")))?,
        ),
        None => None,
    };
    let ckpt_every = p.parse_or("checkpoint-every", 5usize, "integer")?;
    let ckpt_cfg = p.options.get("checkpoint").map(|dir| CheckpointConfig::new(dir, ckpt_every));
    let resume = p.has_flag("resume");
    if resume && ckpt_cfg.is_none() {
        return Err(ArgError::MissingOption("checkpoint (required by --resume)").into());
    }
    if gpus > 1 {
        if budget.is_some() || cfg.tiles > 1 {
            return Err(CliError::Input(
                "--memory-budget/--tiles stream tiles through a single device; \
                 combine them with --gpus 1"
                    .into(),
            ));
        }
        let x = load_tensor(p)?;
        return cmd_factorize_sharded(
            x,
            cfg,
            spec,
            fault_plan,
            ckpt_cfg,
            resume,
            trace_path,
            telemetry_dir,
            gpus,
            nvlink_gbs,
            p.has_flag("json"),
            out,
        );
    }
    // Retain per-kernel records only when an artifact consumer needs them.
    let mut dev = if trace_path.is_some() || telemetry_dir.is_some() {
        Device::with_records(spec.clone())
    } else {
        Device::new(spec.clone())
    };
    if let Some(plan) = fault_plan {
        dev = dev.with_fault_plan(plan);
    }
    if telemetry_dir.is_some() {
        spans::clear();
        cstf_telemetry::set_spans_enabled(true);
    }

    // Build the driver. `--memory-budget` sizes the compiled format in
    // core and resolves the smallest admissible tile count; an explicit
    // `--tiles K > 1` with `--input` streams construction tile-by-tile
    // instead (the full COO is never materialized).
    let t0 = std::time::Instant::now();
    let auntf = if let Some(b) = budget {
        let x = load_tensor(p)?;
        cfg.tiles = cfg.tiles.max(resolve_budget_tiles(&x, &format_name, rank, b)?);
        Auntf::new(x, cfg)
    } else if cfg.tiles > 1 && p.options.contains_key("input") {
        let path = p.options.get("input").unwrap();
        Auntf::from_tns_file_tiled(path, cfg)
            .map_err(|e| CliError::Input(format!("failed to stream {path}: {e}")))?
    } else {
        Auntf::new(load_tensor(p)?, cfg)
    };
    let shape = auntf.shape();
    let nnz = auntf.nnz();
    let result = match &ckpt_cfg {
        Some(cc) => auntf.factorize_checkpointed(&dev, cc, resume)?,
        None => auntf.factorize(&dev)?,
    };
    let wall = t0.elapsed().as_secs_f64();

    if let Some(path) = &trace_path {
        let records = dev.records();
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Input(format!("cannot create trace file {path}: {e}")))?;
        cstf_device::write_chrome_trace(&records, std::io::BufWriter::new(file))
            .map_err(|e| CliError::Input(format!("trace write failed: {e}")))?;
        eprintln!("[chrome trace written to {path}; open in chrome://tracing or Perfetto]");
    }

    let rec = &result.recovery;
    if p.has_flag("json") {
        let recovery_json = serde_json::json!({
            "clean": rec.is_clean(),
            "transient_retries": rec.transient_retries,
            "nan_events": rec.nan_events,
            "cholesky_retries": rec.cholesky_retries,
            "transfer_retries": rec.transfer_retries,
            "degraded_to_unfused": rec.degraded_to_unfused,
        });
        let report = serde_json::json!({
            "recovery": recovery_json,
            "shape": shape.clone(),
            "nnz": nnz,
            "rank": rank,
            "iterations": result.iters,
            "converged": result.converged,
            "fits": result.fits,
            "final_fit": result.fits.last(),
            "lambda": result.model.lambda.clone(),
            "factor_checksum": factor_checksum(&result.model),
            "gpus": 1,
            "tiles": result.tiling.tiles,
            "tiling": serde_json::json!({
                "tiles": result.tiling.tiles,
                "tile_transfers": result.tiling.tile_transfers,
                "streamed_bytes": result.tiling.streamed_bytes,
                "transfer_raw_seconds": result.tiling.transfer_raw_s,
                "transfer_exposed_seconds": result.tiling.transfer_exposed_s,
                "transfer_hidden_seconds": result.tiling.hidden_s(),
            }),
            "wall_seconds": wall,
            "modeled_seconds": dev.total_seconds(),
            "measured_seconds": dev.total_measured_seconds(),
            "device": dev.spec().name,
            "phases": dev.phases().iter().map(|(ph, t)| {
                serde_json::json!({"phase": ph.label(), "seconds": t.seconds, "measured_seconds": t.measured_s, "launches": t.launches})
            }).collect::<Vec<_>>(),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&report).unwrap())
            .map_err(|e| CliError::Input(e.to_string()))?;
    } else {
        writeln!(out, "tensor {shape:?}, nnz {nnz}").map_err(|e| CliError::Input(e.to_string()))?;
        writeln!(out, "rank {rank}, {} iterations, converged: {}", result.iters, result.converged)
            .map_err(|e| CliError::Input(e.to_string()))?;
        if result.tiling.is_tiled() {
            writeln!(
                out,
                "out-of-core: {} tiles/mode, {} tile copies, {:.3e} B streamed \
                 ({:.3e}s hidden behind compute, {:.3e}s exposed)",
                result.tiling.tiles,
                result.tiling.tile_transfers,
                result.tiling.streamed_bytes,
                result.tiling.hidden_s(),
                result.tiling.transfer_exposed_s
            )
            .map_err(|e| CliError::Input(e.to_string()))?;
        }
        if !rec.is_clean() {
            writeln!(
                out,
                "recovery: {} launch retries, {} transfer retries, {} NaN events, \
                 {} Cholesky retries{}",
                rec.transient_retries,
                rec.transfer_retries,
                rec.nan_events,
                rec.cholesky_retries,
                if rec.degraded_to_unfused { ", degraded to unfused ADMM" } else { "" }
            )
            .map_err(|e| CliError::Input(e.to_string()))?;
        }
        if let Some(fit) = result.fits.last() {
            writeln!(out, "final fit: {fit:.6}").map_err(|e| CliError::Input(e.to_string()))?;
        }
        writeln!(
            out,
            "wall time: {wall:.3}s, modeled {} time: {:.3e}s",
            dev.spec().name,
            dev.total_seconds()
        )
        .map_err(|e| CliError::Input(e.to_string()))?;
        for (ph, t) in dev.phases() {
            writeln!(out, "  {:<10} {:>10.3e}s ({} launches)", ph.label(), t.seconds, t.launches)
                .map_err(|e| CliError::Input(e.to_string()))?;
        }
    }

    // Last: `take_run` empties the device, so every consumer above must
    // already have read what it needs.
    if let Some(dir) = &telemetry_dir {
        cstf_telemetry::set_spans_enabled(false);
        let span_records = spans::drain();
        let capture = dev.take_run();
        let summary = RunSummary {
            schema_version: cstf_telemetry::summary::SCHEMA_VERSION,
            system: "cstf-cli".to_string(),
            device: spec.name.to_string(),
            shape,
            nnz: nnz as u64,
            rank: rank as u32,
            iterations: result.iters as u32,
            converged: result.converged,
            fits: result.fits.clone(),
            final_fit: result.fits.last().copied(),
            wall_s: wall,
            modeled_s: capture.total_seconds(),
            measured_s: capture.total_measured_seconds(),
            transfer_s: capture.phase(Phase::Transfer).seconds,
            phases: cstf_device::phase_summaries(&capture),
            heap: Some(HeapSummary::capture()),
            tiling: tiling_summary(&result.tiling),
            elasticity: None,
        };
        let iterations = result.convergence.records();
        write_telemetry_artifacts(
            dir,
            &summary,
            &iterations,
            &capture,
            &span_records,
            &spec,
            Some(&result.tiling),
        )?;
        eprintln!("[telemetry artifacts written to {dir}; render with `cstf report {dir}`]");
    }
    Ok(())
}

/// FNV-1a over the factor and weight bit patterns — two runs produce the
/// same checksum iff their models are bitwise-identical. The CI smoke
/// check compares this field between `--gpus 1` and `--gpus 4` runs.
fn factor_checksum(model: &cstf_tensor::Ktensor) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let feed = |h: &mut u64, bits: u64| {
        for b in bits.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
    };
    for f in &model.factors {
        for &v in f.as_slice() {
            feed(&mut h, v.to_bits());
        }
    }
    for &v in &model.lambda {
        feed(&mut h, v.to_bits());
    }
    format!("{h:016x}")
}

/// The `--gpus N` execution path: builds a homogeneous [`DeviceGroup`]
/// joined by an NVLink-modeled interconnect and runs the elastic sharded
/// factorization. Fault injection (`--faults`) is distributed across the
/// group: stochastic kinds land on device 0, group-scoped faults
/// (`device-loss:D@itN`, `straggler:DxF`, `link-degrade:A-BxF`) on their
/// named targets. The run's [`ElasticityReport`] — detections, deadline
/// trips, reshards, retire iterations — is surfaced in both output forms
/// and as `cstf_group_*` metrics.
#[allow(clippy::too_many_arguments)]
fn cmd_factorize_sharded(
    x: SparseTensor,
    cfg: AuntfConfig,
    spec: DeviceSpec,
    fault_plan: Option<FaultPlan>,
    ckpt_cfg: Option<CheckpointConfig>,
    resume: bool,
    trace_path: Option<String>,
    telemetry_dir: Option<String>,
    gpus: usize,
    nvlink_gbs: f64,
    json: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let record = trace_path.is_some() || telemetry_dir.is_some();
    let devices: Vec<Device> =
        (0..gpus)
            .map(|_| {
                if record {
                    Device::with_records(spec.clone())
                } else {
                    Device::new(spec.clone())
                }
            })
            .collect();
    let link = LinkModel { bandwidth_gbs: nvlink_gbs, latency_us: 10.0 };
    let mut group = DeviceGroup::new(devices, link);
    if let Some(plan) = &fault_plan {
        group = group.with_faults(plan);
    }
    if telemetry_dir.is_some() {
        spans::clear();
        cstf_telemetry::set_spans_enabled(true);
    }

    let shape = x.shape().to_vec();
    let nnz = x.nnz();
    let rank = cfg.rank;
    let t0 = std::time::Instant::now();
    let auntf = Auntf::new(x, cfg);
    let result = match &ckpt_cfg {
        Some(cc) => auntf.factorize_sharded_checkpointed(&group, cc, resume)?,
        None => auntf.factorize_sharded(&group)?,
    };
    let wall = t0.elapsed().as_secs_f64();

    let span_records = if telemetry_dir.is_some() {
        cstf_telemetry::set_spans_enabled(false);
        spans::drain()
    } else {
        Vec::new()
    };

    if let Some(path) = &trace_path {
        let per_dev: Vec<Vec<cstf_device::KernelRecord>> =
            group.devices().iter().map(|d| d.records()).collect();
        let marks: Vec<_> = group.devices().iter().map(|d| d.marks()).collect();
        let faults: Vec<_> = group.devices().iter().map(|d| d.faults()).collect();
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Input(format!("cannot create trace file {path}: {e}")))?;
        cstf_device::write_multi_device_full_trace(
            &per_dev,
            &marks,
            &faults,
            &span_records,
            std::io::BufWriter::new(file),
        )
        .map_err(|e| CliError::Input(format!("trace write failed: {e}")))?;
        eprintln!("[multi-device chrome trace written to {path}; one pid per gpu]");
    }

    // Modeled time across the group: devices run concurrently, so the
    // iteration finishes when the slowest device does.
    let modeled = group.devices().iter().map(|d| d.total_seconds()).fold(0.0, f64::max);
    let rec = &result.recovery;
    let ela = &result.elasticity;
    if json {
        let recovery_json = serde_json::json!({
            "clean": rec.is_clean(),
            "transient_retries": rec.transient_retries,
            "nan_events": rec.nan_events,
            "cholesky_retries": rec.cholesky_retries,
            "transfer_retries": rec.transfer_retries,
            "degraded_to_unfused": rec.degraded_to_unfused,
        });
        let elasticity_json = serde_json::json!({
            "clean": ela.is_clean(),
            "loss_detections": ela.loss_detections,
            "loss_retries": ela.loss_retries,
            "reshards": ela.reshards,
            "backoff_seconds": ela.backoff_s,
            "deadline_trips": ela.deadline_trips.clone(),
            "retired": ela.retired.iter().map(|r| {
                serde_json::json!({ "device": r.device, "iteration": r.iteration })
            }).collect::<Vec<_>>(),
        });
        let devices_json = group
            .devices()
            .iter()
            .enumerate()
            .map(|(d, dev)| {
                let phases = dev
                    .phases()
                    .iter()
                    .map(|(ph, t)| {
                        serde_json::json!({"phase": ph.label(), "seconds": t.seconds, "launches": t.launches})
                    })
                    .collect::<Vec<_>>();
                serde_json::json!({
                    "gpu": d,
                    "modeled_seconds": dev.total_seconds(),
                    "collective_bytes": dev.phase_totals(Phase::Transfer).bytes,
                    "phases": phases,
                })
            })
            .collect::<Vec<_>>();
        let report = serde_json::json!({
            "recovery": recovery_json,
            "elasticity": elasticity_json,
            "shape": shape.clone(),
            "nnz": nnz,
            "rank": rank,
            "iterations": result.iters,
            "converged": result.converged,
            "fits": result.fits,
            "final_fit": result.fits.last(),
            "lambda": result.model.lambda.clone(),
            "factor_checksum": factor_checksum(&result.model),
            "gpus": gpus,
            "nvlink_gbs": nvlink_gbs,
            "wall_seconds": wall,
            "modeled_seconds": modeled,
            "device": spec.name,
            "devices": devices_json,
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&report).unwrap())
            .map_err(|e| CliError::Input(e.to_string()))?;
    } else {
        let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));
        w(format!("tensor {shape:?}, nnz {nnz}"))?;
        w(format!(
            "sharded across {gpus} simulated {} devices (link {nvlink_gbs} GB/s)",
            spec.name
        ))?;
        w(format!("rank {rank}, {} iterations, converged: {}", result.iters, result.converged))?;
        if !rec.is_clean() {
            w(format!(
                "recovery: {} launch retries, {} transfer retries, {} NaN events, \
                 {} Cholesky retries{}",
                rec.transient_retries,
                rec.transfer_retries,
                rec.nan_events,
                rec.cholesky_retries,
                if rec.degraded_to_unfused { ", degraded to unfused ADMM" } else { "" }
            ))?;
        }
        if !ela.is_clean() {
            let retired = if ela.retired.is_empty() {
                "none".to_string()
            } else {
                ela.retired
                    .iter()
                    .map(|r| format!("gpu{}@it{}", r.device, r.iteration))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            w(format!(
                "elasticity: {} loss detections, {} retries ({:.3e}s backoff), \
                 {} reshards; retired: {retired}; deadline trips {:?}",
                ela.loss_detections,
                ela.loss_retries,
                ela.backoff_s,
                ela.reshards,
                ela.deadline_trips
            ))?;
        }
        if let Some(fit) = result.fits.last() {
            w(format!("final fit: {fit:.6}"))?;
        }
        w(format!("wall time: {wall:.3}s, modeled group time: {modeled:.3e}s"))?;
        for (d, dev) in group.devices().iter().enumerate() {
            let mttkrp = dev.phase_totals(Phase::Mttkrp);
            let coll = dev.phase_totals(Phase::Transfer);
            w(format!(
                "  gpu{d}: total {:>10.3e}s  MTTKRP {:>10.3e}s ({} launches)  collectives {:.2e} B",
                dev.total_seconds(),
                mttkrp.seconds,
                mttkrp.launches,
                coll.bytes
            ))?;
        }
    }

    // Telemetry artifacts: summary/metrics come from device 0 (the fault
    // target and fit device); the trace interleaves every device.
    if let Some(dir) = &telemetry_dir {
        let captures: Vec<RunCapture> = group.devices().iter().map(|d| d.take_run()).collect();
        let summary = RunSummary {
            schema_version: cstf_telemetry::summary::SCHEMA_VERSION,
            system: format!("cstf-cli x{gpus}"),
            device: spec.name.to_string(),
            shape,
            nnz: nnz as u64,
            rank: rank as u32,
            iterations: result.iters as u32,
            converged: result.converged,
            fits: result.fits.clone(),
            final_fit: result.fits.last().copied(),
            wall_s: wall,
            modeled_s: modeled,
            measured_s: captures.iter().map(|c| c.total_measured_seconds()).sum(),
            transfer_s: captures[0].phase(Phase::Transfer).seconds,
            phases: cstf_device::phase_summaries(&captures[0]),
            heap: Some(HeapSummary::capture()),
            tiling: None,
            elasticity: Some(cstf_telemetry::ElasticitySummary {
                gpus: gpus as u64,
                loss_detections: u64::from(ela.loss_detections),
                loss_retries: u64::from(ela.loss_retries),
                reshards: u64::from(ela.reshards),
                backoff_s: ela.backoff_s,
                retired: ela
                    .retired
                    .iter()
                    .map(|r| cstf_telemetry::RetiredDevice {
                        device: r.device as u64,
                        iteration: r.iteration as u64,
                    })
                    .collect(),
            }),
        };
        let iterations = result.convergence.records();
        let root = std::path::Path::new(dir);
        std::fs::create_dir_all(root)
            .map_err(|e| CliError::Input(format!("cannot create telemetry dir {dir}: {e}")))?;
        let io_err = |name: &str| {
            let name = name.to_string();
            move |e: std::io::Error| CliError::Input(format!("telemetry artifact {name}: {e}"))
        };
        std::fs::write(root.join("run.json"), summary.to_json_pretty())
            .map_err(io_err("run.json"))?;
        let events =
            std::fs::File::create(root.join("events.jsonl")).map_err(io_err("events.jsonl"))?;
        convergence::write_jsonl(&iterations, std::io::BufWriter::new(events))
            .map_err(io_err("events.jsonl"))?;
        let ops: Vec<cstf_device::OpSpec> = captures
            .iter()
            .enumerate()
            .flat_map(|(d, c)| cstf_device::ops_from_records(d, &c.records))
            .collect();
        let ops_file =
            std::fs::File::create(root.join("ops.jsonl")).map_err(io_err("ops.jsonl"))?;
        cstf_device::write_ops_jsonl(&ops, std::io::BufWriter::new(ops_file))
            .map_err(io_err("ops.jsonl"))?;
        let dag = cstf_device::analyze(&ops);

        let trace = std::fs::File::create(root.join("trace.json")).map_err(io_err("trace.json"))?;
        let per_dev: Vec<Vec<cstf_device::KernelRecord>> =
            captures.iter().map(|c| c.records.clone()).collect();
        let marks: Vec<_> = captures.iter().map(|c| c.marks.clone()).collect();
        let faults: Vec<_> = captures.iter().map(|c| c.faults.clone()).collect();
        cstf_device::write_multi_device_full_trace_with_critical_path(
            &per_dev,
            &marks,
            &faults,
            &span_records,
            &dag.chain_refs(),
            std::io::BufWriter::new(trace),
        )
        .map_err(io_err("trace.json"))?;
        let refs: Vec<&RunCapture> = captures.iter().collect();
        let registry = cstf_device::registry_from_captures(&refs, &spec);
        add_group_metrics(&registry, &result.elasticity);
        add_critical_path_metrics(&registry, &dag);
        std::fs::write(root.join("metrics.prom"), registry.to_prometheus())
            .map_err(io_err("metrics.prom"))?;
        let devices_rows = captures
            .iter()
            .enumerate()
            .map(|(gpu, c)| {
                let phases = cstf_device::phase_summaries(c)
                    .iter()
                    .map(|ph| {
                        serde_json::json!({
                            "phase": ph.phase,
                            "modeled_s": ph.modeled_s,
                            "launches": ph.launches,
                            "flops": ph.flops,
                            "bytes": ph.bytes,
                        })
                    })
                    .collect::<Vec<_>>();
                serde_json::json!({
                    "gpu": gpu,
                    "modeled_seconds": c.total_seconds(),
                    "collective_bytes": c.phase(Phase::Transfer).bytes,
                    "phases": phases,
                })
            })
            .collect::<Vec<_>>();
        let devices_doc = serde_json::json!({ "gpus": gpus, "devices": devices_rows });
        std::fs::write(
            root.join("devices.json"),
            serde_json::to_string_pretty(&devices_doc).unwrap(),
        )
        .map_err(io_err("devices.json"))?;
        eprintln!("[telemetry artifacts written to {dir}; render with `cstf report {dir}`]");
    }
    Ok(())
}

/// Appends the `cstf_group_*` metric family — what the elastic sharded
/// driver observed and did — to a run's registry. Counters are emitted
/// only when nonzero so a healthy group's scrape stays identical to the
/// pre-elastic shape; per-device series carry a `device` label keyed by
/// the member's *original* group id (stable across reshards).
fn add_group_metrics(registry: &Registry, ela: &cstf_core::ElasticityReport) {
    if ela.loss_detections > 0 {
        registry.counter_add(
            "cstf_group_loss_detections_total",
            "Device-loss faults detected by the sharded driver",
            f64::from(ela.loss_detections),
        );
    }
    if ela.loss_retries > 0 {
        registry.counter_add(
            "cstf_group_loss_retries_total",
            "Outer-iteration replays before a device death was declared",
            f64::from(ela.loss_retries),
        );
        registry.gauge_set(
            "cstf_group_backoff_seconds",
            "Modeled backoff charged between loss retries",
            ela.backoff_s,
        );
    }
    if ela.reshards > 0 {
        registry.counter_add(
            "cstf_group_reshards_total",
            "Shrink-to-survivors reshards performed",
            f64::from(ela.reshards),
        );
    }
    for r in &ela.retired {
        let device = r.device.to_string();
        registry.counter_add_labeled(
            "cstf_group_devices_retired_total",
            "Group members declared dead and excised",
            &[("device", &device)],
            1.0,
        );
        registry.gauge_set_labeled(
            "cstf_group_retire_iteration",
            "Outer iteration at which the member was declared dead",
            &[("device", &device)],
            r.iteration as f64,
        );
    }
    for (device, &trips) in ela.deadline_trips.iter().enumerate() {
        if trips > 0 {
            let device = device.to_string();
            registry.counter_add_labeled(
                "cstf_group_deadline_trips_total",
                "Collective deadline-budget trips per group member",
                &[("device", &device)],
                trips as f64,
            );
        }
    }
}

/// Runs the configured decomposition purely for its counters and returns
/// one capture per device (index = gpu). Per-kernel aggregation is always
/// on in the profiler, so no record retention is needed.
///
/// With `inject` (the `CSTF_PERF_INJECT_LAUNCH` test hook), one synthetic
/// launch is added to device 0 before capture — CI uses this to prove the
/// perf gate actually fails on counter drift.
fn run_counters(setup: &RunSetup, x: SparseTensor) -> Result<Vec<RunCapture>, CliError> {
    let inject = std::env::var_os("CSTF_PERF_INJECT_LAUNCH").is_some();
    let auntf = Auntf::new(x, setup.cfg.clone());
    if setup.gpus > 1 {
        let devices: Vec<Device> =
            (0..setup.gpus).map(|_| Device::new(setup.spec.clone())).collect();
        let link = LinkModel { bandwidth_gbs: setup.nvlink_gbs, latency_us: 10.0 };
        let group = DeviceGroup::new(devices, link);
        auntf.factorize_sharded(&group)?;
        if inject {
            inject_synthetic_launch(group.device(0));
        }
        Ok(group.devices().iter().map(|d| d.take_run()).collect())
    } else {
        let dev = Device::new(setup.spec.clone());
        auntf.factorize(&dev)?;
        if inject {
            inject_synthetic_launch(&dev);
        }
        Ok(vec![dev.take_run()])
    }
}

/// One tiny extra launch — enough to flip exactly one `(phase, kernel,
/// mode)` key in the baseline diff.
fn inject_synthetic_launch(dev: &Device) {
    dev.launch(
        "perf_inject_launch",
        Phase::Other,
        KernelClass::Stream,
        KernelCost {
            flops: 1.0,
            bytes_read: 8.0,
            parallel_work: 1.0,
            serial_steps: 1.0,
            ..Default::default()
        },
        || (),
    );
}

/// Flattens per-device captures into a schema-versioned [`PerfBaseline`].
fn baseline_from_captures(
    setup: &RunSetup,
    dataset: &str,
    captures: &[RunCapture],
) -> PerfBaseline {
    let mut kernels = Vec::new();
    for (gpu, capture) in captures.iter().enumerate() {
        for (key, totals) in &capture.kernels {
            kernels.push(KernelBaseline::from_totals(gpu, key, totals));
        }
    }
    PerfBaseline {
        schema_version: cstf_device::baseline::BASELINE_SCHEMA_VERSION,
        dataset: dataset.to_string(),
        format: setup.format_name.clone(),
        rank: setup.rank as u64,
        update: setup.update_name.clone(),
        gpus: setup.gpus as u64,
        device: setup.spec.name.to_string(),
        kernels,
    }
}

/// `cstf analyze`: runs the config and renders the §3.3-style roofline
/// attribution table from exact measured counters — per `(phase, kernel,
/// mode)` key, per device in the sharded case — then, for the unfused ADMM
/// path, checks each mode's measured arithmetic intensity against the
/// closed-form Eq. 5 and flags deviations beyond `--ai-tol`.
fn cmd_analyze(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let setup = build_setup(p)?;
    let x = load_tensor(p)?;
    let shape = x.shape().to_vec();
    let ai_tol = p.parse_or("ai-tol", 0.05f64, "number")?;
    let captures = run_counters(&setup, x)?;

    // Per-mode Eq. 3–5 check: only meaningful on the unfused generic ADMM
    // path, whose kernel ledger is calibrated to the paper's constants.
    struct ModeAi {
        mode: usize,
        i_dim: usize,
        measured: f64,
        expected: f64,
        deviation: f64,
        flagged: bool,
        bound: &'static str,
    }
    let admm_ai: Vec<ModeAi> = if setup.update_name == "admm" {
        (0..shape.len())
            .map(|m| {
                let (mut flops, mut bytes) = (0.0, 0.0);
                for capture in &captures {
                    for ((phase, _, mode), t) in &capture.kernels {
                        if *phase == Phase::Update && *mode == Some(m as u32) {
                            flops += t.flops;
                            bytes += t.bytes;
                        }
                    }
                }
                let measured = if bytes > 0.0 { flops / bytes } else { f64::INFINITY };
                let expected = cstf_device::roofline::eq5_intensity(shape[m], setup.rank);
                let deviation = cstf_device::roofline::relative_deviation(measured, expected);
                ModeAi {
                    mode: m,
                    i_dim: shape[m],
                    measured,
                    expected,
                    deviation,
                    flagged: deviation > ai_tol,
                    bound: if measured < setup.spec.ridge_intensity() {
                        "bandwidth"
                    } else {
                        "compute"
                    },
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    if p.has_flag("json") {
        let devices_json = captures
            .iter()
            .enumerate()
            .map(|(gpu, capture)| {
                let rows = cstf_device::attribute(&capture.kernels, &setup.spec);
                let kernels = rows
                    .iter()
                    .map(|r| {
                        serde_json::json!({
                            "phase": r.key.0.label(),
                            "kernel": r.key.1,
                            "mode": r.key.2,
                            "launches": r.totals.launches,
                            "flops": r.totals.flops,
                            "bytes": r.totals.bytes,
                            "modeled_s": r.totals.modeled_s,
                            "intensity": if r.intensity.is_finite() { r.intensity } else { -1.0 },
                            "bound": r.bound.label(),
                        })
                    })
                    .collect::<Vec<_>>();
                serde_json::json!({ "gpu": gpu, "kernels": kernels })
            })
            .collect::<Vec<_>>();
        let ai_json = admm_ai
            .iter()
            .map(|a| {
                serde_json::json!({
                    "mode": a.mode,
                    "i_dim": a.i_dim,
                    "measured_ai": a.measured,
                    "eq5_ai": a.expected,
                    "deviation": a.deviation,
                    "flagged": a.flagged,
                    "bound": a.bound,
                })
            })
            .collect::<Vec<_>>();
        let report = serde_json::json!({
            "device": setup.spec.name,
            "ridge_intensity": setup.spec.ridge_intensity(),
            "gpus": setup.gpus,
            "rank": setup.rank,
            "update": setup.update_name,
            "format": setup.format_name,
            "ai_tol": ai_tol,
            "devices": devices_json,
            "admm_ai": ai_json,
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&report).unwrap())
            .map_err(|e| CliError::Input(e.to_string()))?;
        return Ok(());
    }

    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));
    w(format!(
        "ROOFLINE ATTRIBUTION — {} (ridge {:.2} flop/byte), update {}, rank {}",
        setup.spec.name,
        setup.spec.ridge_intensity(),
        setup.update_name,
        setup.rank
    ))?;
    for (gpu, capture) in captures.iter().enumerate() {
        if captures.len() > 1 {
            w(format!("gpu{gpu}:"))?;
        }
        w(format!(
            "  {:<10} {:<26} {:>4} {:>9} {:>11} {:>11} {:>7}  {}",
            "PHASE", "KERNEL", "MODE", "LAUNCHES", "FLOPS", "BYTES", "AI", "BOUND"
        ))?;
        for r in cstf_device::attribute(&capture.kernels, &setup.spec) {
            let mode = r.key.2.map_or_else(|| "-".to_string(), |m| m.to_string());
            let ai = if r.intensity.is_finite() {
                format!("{:7.3}", r.intensity)
            } else {
                format!("{:>7}", "inf")
            };
            w(format!(
                "  {:<10} {:<26} {:>4} {:>9} {:>11.3e} {:>11.3e} {}  {}",
                r.key.0.label(),
                r.key.1,
                mode,
                r.totals.launches,
                r.totals.flops,
                r.totals.bytes,
                ai,
                r.bound.label()
            ))?;
        }
    }
    if !admm_ai.is_empty() {
        w(format!(
            "EQ. 3-5 CHECK (unfused ADMM per-mode UPDATE intensity, tol {:.0}%):",
            ai_tol * 100.0
        ))?;
        for a in &admm_ai {
            w(format!(
                "  mode {} (I={}): measured AI {:.3}, eq5 {:.3}, deviation {:.1}% [{}] — {}-bound",
                a.mode,
                a.i_dim,
                a.measured,
                a.expected,
                a.deviation * 100.0,
                if a.flagged { "DRIFT" } else { "ok" },
                a.bound
            ))?;
        }
    }
    Ok(())
}

/// `cstf perf record|compare`: the counter-exact baseline store.
///
/// `record` snapshots the per-key aggregates of one configuration into
/// `--baseline-dir/<dataset>-<format>-r<rank>-<update>-g<gpus>.json`;
/// `compare` re-runs the same configuration and diffs against the stored
/// artifact — counters must match exactly, and any drift returns
/// [`CliError::Drift`] (process exit 3) naming the offending keys.
fn cmd_perf(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let action = p
        .positionals
        .first()
        .map(String::as_str)
        .ok_or(ArgError::MissingOption("record|compare (positional)"))?;
    if action != "record" && action != "compare" {
        return Err(CliError::Args(ArgError::BadValue {
            key: "perf".into(),
            value: action.into(),
            expected: "record|compare",
        }));
    }
    let setup = build_setup(p)?;
    let dataset = dataset_label(p);
    let x = load_tensor(p)?;
    let captures = run_counters(&setup, x)?;
    let current = baseline_from_captures(&setup, &dataset, &captures);
    let dir = p.get_or("baseline-dir", "results/baselines");
    let path = std::path::Path::new(dir).join(format!("{}.json", current.file_stem()));
    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));

    if action == "record" {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Input(format!("cannot create baseline dir {dir}: {e}")))?;
        std::fs::write(&path, current.to_json_pretty())
            .map_err(|e| CliError::Input(format!("cannot write {}: {e}", path.display())))?;
        w(format!(
            "baseline recorded: {} ({} kernel keys)",
            path.display(),
            current.kernels.len()
        ))?;
        return Ok(());
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        CliError::Input(format!(
            "no baseline at {} (run `cstf perf record` first): {e}",
            path.display()
        ))
    })?;
    let baseline = PerfBaseline::from_json(&text).map_err(CliError::Input)?;
    let mut deltas = compare_baselines(&baseline, &current).map_err(CliError::Input)?;
    // Measured-band ratchet: fail when the aggregate measured/modeled
    // ratio grew past the band (0 disables; counters alone can't see a
    // kernel getting slower without doing more work).
    let band = p.parse_or("measured-band", 0.0f64, "number")?;
    if band > 0.0 {
        if let Some(d) = compare_measured_band(&baseline, &current, band) {
            deltas.push(d);
        }
    }

    if p.has_flag("json") {
        let rows = deltas
            .iter()
            .map(|d| {
                serde_json::json!({
                    "key": d.key,
                    "field": d.field,
                    "baseline": d.baseline,
                    "current": d.current,
                    "kind": d.kind.label(),
                })
            })
            .collect::<Vec<_>>();
        let report = serde_json::json!({
            "baseline": path.display().to_string(),
            "kernel_keys": current.kernels.len(),
            "drift": deltas.iter().filter(|d| d.is_drift()).count(),
            "deltas": rows,
        });
        w(serde_json::to_string_pretty(&report).unwrap())?;
    } else {
        for d in &deltas {
            w(format!(
                "  {:<12} {} {}: {} -> {}",
                d.kind.label(),
                d.key,
                d.field,
                d.baseline,
                d.current
            ))?;
        }
    }
    let drifting: Vec<&cstf_device::BaselineDelta> =
        deltas.iter().filter(|d| d.is_drift()).collect();
    if drifting.is_empty() {
        if !p.has_flag("json") {
            w(format!(
                "perf gate OK: {} kernel keys match {} exactly",
                current.kernels.len(),
                path.display()
            ))?;
        }
        Ok(())
    } else {
        let mut keys: Vec<&str> = drifting.iter().map(|d| d.key.as_str()).collect();
        keys.dedup();
        Err(CliError::Drift(format!(
            "{} counter delta(s) vs {} in: {}",
            drifting.len(),
            path.display(),
            keys.join(", ")
        )))
    }
}

/// Writes the four telemetry artifacts into `dir` (created if absent):
/// `run.json` (the [`RunSummary`]), `events.jsonl` (per-iteration
/// convergence records), `trace.json` (Perfetto timeline with counter
/// tracks, iteration instants, MTTKRP→UPDATE flows and host spans) and
/// `metrics.prom` (Prometheus text exposition).
#[allow(clippy::too_many_arguments)]
fn write_telemetry_artifacts(
    dir: &str,
    summary: &RunSummary,
    iterations: &[IterationRecord],
    capture: &RunCapture,
    span_records: &[cstf_telemetry::SpanRecord],
    spec: &DeviceSpec,
    tiling: Option<&cstf_core::TilingReport>,
) -> Result<(), CliError> {
    let root = std::path::Path::new(dir);
    std::fs::create_dir_all(root)
        .map_err(|e| CliError::Input(format!("cannot create telemetry dir {dir}: {e}")))?;
    let io_err = |name: &str| {
        let name = name.to_string();
        move |e: std::io::Error| CliError::Input(format!("telemetry artifact {name}: {e}"))
    };

    std::fs::write(root.join("run.json"), summary.to_json_pretty()).map_err(io_err("run.json"))?;

    let events =
        std::fs::File::create(root.join("events.jsonl")).map_err(io_err("events.jsonl"))?;
    convergence::write_jsonl(iterations, std::io::BufWriter::new(events))
        .map_err(io_err("events.jsonl"))?;

    let ops = cstf_device::ops_from_records(0, &capture.records);
    let ops_file = std::fs::File::create(root.join("ops.jsonl")).map_err(io_err("ops.jsonl"))?;
    cstf_device::write_ops_jsonl(&ops, std::io::BufWriter::new(ops_file))
        .map_err(io_err("ops.jsonl"))?;
    let dag = cstf_device::analyze(&ops);

    let trace = std::fs::File::create(root.join("trace.json")).map_err(io_err("trace.json"))?;
    cstf_device::write_full_trace_with_critical_path(
        &capture.records,
        &capture.marks,
        &capture.faults,
        span_records,
        &dag.chain_refs(),
        std::io::BufWriter::new(trace),
    )
    .map_err(io_err("trace.json"))?;

    let registry = cstf_device::registry_from_capture(capture, spec);
    if let Some(t) = tiling {
        add_tiling_metrics(&registry, t);
    }
    add_critical_path_metrics(&registry, &dag);
    std::fs::write(root.join("metrics.prom"), registry.to_prometheus())
        .map_err(io_err("metrics.prom"))?;
    Ok(())
}

/// Converts the tiled engine's report into its `run.json` mirror; `None`
/// for in-core runs so their artifacts keep the pre-tiling shape.
fn tiling_summary(t: &cstf_core::TilingReport) -> Option<cstf_telemetry::TilingSummary> {
    if !t.is_tiled() {
        return None;
    }
    Some(cstf_telemetry::TilingSummary {
        tiles: t.tiles as u64,
        tile_transfers: t.tile_transfers,
        streamed_bytes: t.streamed_bytes,
        transfer_raw_s: t.transfer_raw_s,
        transfer_exposed_s: t.transfer_exposed_s,
    })
}

/// Appends the `cstf_critical_path_*` / `cstf_device_*` gauge families —
/// the DAG-derived schedule attribution — to a run's registry.
fn add_critical_path_metrics(registry: &Registry, dag: &cstf_device::DagAnalysis) {
    registry.gauge_set(
        "cstf_critical_path_seconds",
        "Modeled critical path of the op DAG (iteration lower bound)",
        dag.critical_path_s,
    );
    registry.gauge_set(
        "cstf_critical_path_ops",
        "Ops on the modeled critical path",
        dag.critical_path.len() as f64,
    );
    registry.gauge_set(
        "cstf_critical_path_total_modeled_seconds",
        "Serial sum of all modeled op durations (the one-device bound)",
        dag.total_modeled_s,
    );
    for d in &dag.devices {
        let device = d.device.to_string();
        registry.gauge_set_labeled(
            "cstf_device_busy_seconds",
            "Modeled seconds the device spent executing ops",
            &[("device", &device)],
            d.busy_s,
        );
        registry.gauge_set_labeled(
            "cstf_device_stall_seconds",
            "Modeled seconds the device sat blocked at collective rendezvous",
            &[("device", &device)],
            d.stall_s,
        );
        registry.gauge_set_labeled(
            "cstf_device_idle_seconds",
            "Modeled seconds after the device's stream ended (trailing idle)",
            &[("device", &device)],
            d.idle_s,
        );
        registry.gauge_set_labeled(
            "cstf_device_idle_fraction",
            "Trailing idle as a fraction of the schedule span",
            &[("device", &device)],
            d.idle_fraction(dag.critical_path_s),
        );
    }
}

/// Appends the `cstf_tile_*` metric family — what the out-of-core tiled
/// driver streamed and how much of it the double-buffer hid. Emitted only
/// for actually-tiled runs (`K > 1`), so an in-core run's scrape stays
/// identical to the pre-tiling shape.
fn add_tiling_metrics(registry: &Registry, t: &cstf_core::TilingReport) {
    if !t.is_tiled() {
        return;
    }
    registry.gauge_set(
        "cstf_tile_count",
        "Out-of-core tile count K per mode sweep",
        t.tiles as f64,
    );
    registry.counter_add(
        "cstf_tile_transfers_total",
        "Host-to-device tile copies performed",
        t.tile_transfers as f64,
    );
    registry.counter_add(
        "cstf_tile_streamed_bytes_total",
        "Bytes streamed across all tile copies",
        t.streamed_bytes,
    );
    registry.counter_add(
        "cstf_tile_transfer_raw_seconds_total",
        "Un-overlapped modeled seconds of all tile copies",
        t.transfer_raw_s,
    );
    registry.counter_add(
        "cstf_tile_transfer_exposed_seconds_total",
        "Tile-copy seconds that extended the timeline after double-buffering",
        t.transfer_exposed_s,
    );
    registry.counter_add(
        "cstf_tile_transfer_hidden_seconds_total",
        "Tile-copy seconds hidden behind the previous tile's compute",
        t.hidden_s(),
    );
}

/// `cstf report DIR`: renders the artifacts a `--telemetry` run wrote.
fn cmd_report(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = p
        .positionals
        .first()
        .map(String::as_str)
        .or_else(|| p.options.get("dir").map(String::as_str))
        .ok_or(ArgError::MissingOption("dir (or a DIR positional)"))?;
    let root = std::path::Path::new(dir);
    if !root.exists() {
        return Err(CliError::Input(format!(
            "{dir}: no such directory (expected the DIR of a --telemetry run)"
        )));
    }
    if !root.is_dir() {
        return Err(CliError::Input(format!(
            "{dir}: not a directory (expected the DIR of a --telemetry run)"
        )));
    }

    let run_text = std::fs::read_to_string(root.join("run.json"))
        .map_err(|e| CliError::Input(format!("{dir}/run.json: {e}")))?;
    let summary = RunSummary::from_json(&run_text).map_err(CliError::Input)?;

    // events.jsonl is optional — a run without convergence tracking still
    // gets the phase table.
    let iterations = match std::fs::read_to_string(root.join("events.jsonl")) {
        Ok(text) => convergence::read_jsonl(&text)
            .map_err(|e| CliError::Input(format!("{dir}/events.jsonl: {e}")))?,
        Err(_) => Vec::new(),
    };

    if p.has_flag("json") {
        writeln!(out, "{}", summary.report_json_line())
            .map_err(|e| CliError::Input(e.to_string()))?;
        return Ok(());
    }
    write!(out, "{}", summary.render_report(&iterations))
        .map_err(|e| CliError::Input(e.to_string()))?;

    // devices.json is written by sharded (--gpus N) runs only; when present,
    // append the per-device breakdown table.
    if let Ok(text) = std::fs::read_to_string(root.join("devices.json")) {
        let doc: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| CliError::Input(format!("{dir}/devices.json: {e}")))?;
        let devices = doc
            .get("devices")
            .and_then(|d| d.as_array())
            .ok_or_else(|| CliError::Input(format!("{dir}/devices.json: missing devices")))?;
        let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));
        w(String::new())?;
        w("PER-DEVICE BREAKDOWN".to_string())?;
        w(format!(
            "  {:<6} {:>13} {:>17} {:>13}  {}",
            "GPU", "MODELED_S", "COLLECTIVE_BYTES", "LAUNCHES", "TOP PHASE"
        ))?;
        for d in devices {
            let gpu = d.get("gpu").and_then(|v| v.as_u64()).unwrap_or(0);
            let modeled = d.get("modeled_seconds").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let coll = d.get("collective_bytes").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let phases = d.get("phases").and_then(|v| v.as_array());
            let launches: u64 = phases
                .map(|ps| ps.iter().filter_map(|p| p.get("launches")?.as_u64()).sum())
                .unwrap_or(0);
            let top = phases
                .and_then(|ps| {
                    ps.iter()
                        .max_by(|a, b| {
                            let sa = a.get("modeled_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
                            let sb = b.get("modeled_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
                            sa.total_cmp(&sb)
                        })
                        .and_then(|p| Some(p.get("phase")?.as_str()?.to_string()))
                })
                .unwrap_or_else(|| "-".to_string());
            w(format!(
                "  gpu{:<3} {:>13.3e} {:>17.3e} {:>13}  {}",
                gpu, modeled, coll, launches, top
            ))?;
        }
    }
    Ok(())
}

/// `cstf critical-path DIR`: rebuilds the causal op DAG from the
/// `ops.jsonl` artifact a `--telemetry` run wrote and reports where the
/// modeled time goes — critical path, per-device busy/stall/idle, link
/// overlap efficiency, and what-if projections. Every number derives from
/// the artifact alone (no wall clock), so output is byte-deterministic.
fn cmd_critical_path(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = p
        .positionals
        .first()
        .map(String::as_str)
        .or_else(|| p.options.get("dir").map(String::as_str))
        .ok_or(ArgError::MissingOption("dir (or a DIR positional)"))?;
    let root = std::path::Path::new(dir);
    let ops_text = std::fs::read_to_string(root.join("ops.jsonl")).map_err(|e| {
        CliError::Input(format!(
            "{dir}/ops.jsonl: {e} (the op DAG is written by `factorize --telemetry {dir}`; \
             re-run it with this version)"
        ))
    })?;
    let ops = cstf_device::read_ops_jsonl(&ops_text)
        .map_err(|e| CliError::Input(format!("{dir}/{e}")))?;
    let dag = cstf_device::analyze(&ops);

    let requested = match p.options.get("what-if") {
        Some(spec) => {
            let what_ifs = cstf_device::parse_what_ifs(spec)
                .map_err(|e| CliError::Input(format!("bad --what-if spec: {e}")))?;
            let projected = cstf_device::analyze(&cstf_device::apply_what_ifs(&ops, &what_ifs));
            Some((spec.clone(), projected.critical_path_s))
        }
        None => None,
    };
    let standard: Vec<(&'static str, f64)> = cstf_device::WhatIf::all()
        .into_iter()
        .map(|w| {
            let projected = cstf_device::analyze(&cstf_device::apply_what_ifs(&ops, &[w]));
            (w.label(), projected.critical_path_s)
        })
        .collect();
    let speedup =
        if dag.critical_path_s > 0.0 { dag.total_modeled_s / dag.critical_path_s } else { 1.0 };

    if p.has_flag("json") {
        let devices = dag
            .devices
            .iter()
            .map(|d| {
                serde_json::json!({
                    "device": d.device,
                    "ops": d.ops,
                    "busy_s": d.busy_s,
                    "stall_s": d.stall_s,
                    "idle_s": d.idle_s,
                    "idle_fraction": d.idle_fraction(dag.critical_path_s),
                })
            })
            .collect::<Vec<_>>();
        let links = dag
            .links
            .iter()
            .map(|l| {
                serde_json::json!({
                    "name": l.name.clone(),
                    "transfers": l.transfers,
                    "raw_s": l.raw_s,
                    "exposed_s": l.exposed_s,
                    "hidden_s": l.hidden_s(),
                    "overlap_efficiency": l.overlap_efficiency(),
                })
            })
            .collect::<Vec<_>>();
        let phases: std::collections::BTreeMap<String, f64> = dag
            .critical_path_phases()
            .into_iter()
            .map(|(ph, s)| (ph.label().to_lowercase(), s))
            .collect();
        let what_if: std::collections::BTreeMap<String, f64> =
            standard.iter().map(|&(label, s)| (label.to_string(), s)).collect();
        let mut doc = serde_json::json!({
            "schema_version": 1,
            "ops": dag.ops.len(),
            "critical_path_s": dag.critical_path_s,
            "critical_path_ops": dag.critical_path.len(),
            "total_modeled_s": dag.total_modeled_s,
            "parallel_speedup": speedup,
            "devices": devices,
            "links": links,
            "critical_path_phases": phases,
            "what_if": what_if,
        });
        if let Some((spec, s)) = &requested {
            doc["requested_what_if"] =
                serde_json::json!({ "spec": spec.clone(), "critical_path_s": s });
        }
        writeln!(out, "{}", serde_json::to_string(&doc).unwrap())
            .map_err(|e| CliError::Input(e.to_string()))?;
        return Ok(());
    }

    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));
    w(format!(
        "critical path: {:.6e}s across {} of {} ops \
         (serial total {:.6e}s, parallel speedup {:.2}x)",
        dag.critical_path_s,
        dag.critical_path.len(),
        dag.ops.len(),
        dag.total_modeled_s,
        speedup
    ))?;
    let on_path = dag
        .critical_path_phases()
        .iter()
        .map(|(ph, s)| format!("{} {:.3e}s", ph.label(), s))
        .collect::<Vec<_>>()
        .join(", ");
    w(format!("on the path:   {on_path}"))?;
    let pct = |s: f64| {
        if dag.critical_path_s > 0.0 {
            100.0 * s / dag.critical_path_s
        } else {
            0.0
        }
    };
    w("per-device attribution (of the schedule span):".to_string())?;
    for d in &dag.devices {
        w(format!(
            "  gpu{:<3} busy {:>10.3e}s ({:>5.1}%)  stall {:>10.3e}s ({:>5.1}%)  \
             idle {:>10.3e}s ({:>5.1}%)",
            d.device,
            d.busy_s,
            pct(d.busy_s),
            d.stall_s,
            pct(d.stall_s),
            d.idle_s,
            pct(d.idle_s)
        ))?;
    }
    if !dag.links.is_empty() {
        w("link overlap:".to_string())?;
        for l in &dag.links {
            w(format!(
                "  {:<18} {:>6} transfers  raw {:>10.3e}s  exposed {:>10.3e}s  {:>5.1}% hidden",
                l.name,
                l.transfers,
                l.raw_s,
                l.exposed_s,
                100.0 * l.overlap_efficiency()
            ))?;
        }
    }
    w("what-if projections (modeled critical path):".to_string())?;
    w(format!("  {:<18} {:>12.6e}s", "baseline", dag.critical_path_s))?;
    let delta = |s: f64| {
        if dag.critical_path_s > 0.0 {
            100.0 * (s - dag.critical_path_s) / dag.critical_path_s
        } else {
            0.0
        }
    };
    for (label, s) in &standard {
        w(format!("  {:<18} {:>12.6e}s  ({:+.1}%)", label, s, delta(*s)))?;
    }
    if let Some((spec, s)) = &requested {
        w(format!("  {:<18} {:>12.6e}s  ({:+.1}%)  [requested]", spec, s, delta(*s)))?;
    }
    Ok(())
}

fn cmd_info(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let x = load_tensor(p)?;
    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| CliError::Input(e.to_string()));
    w(format!("shape:    {:?}", x.shape()))?;
    w(format!("modes:    {}", x.nmodes()))?;
    w(format!("nnz:      {}", x.nnz()))?;
    w(format!("density:  {:.3e}", x.density()))?;
    w(format!("norm:     {:.6e}", x.norm_sq().sqrt()))?;
    let coo = x.nnz() * (x.nmodes() * 4 + 8);
    let csf = cstf_formats::Csf::from_coo(&x, 0).storage_bytes();
    let hicoo = cstf_formats::HiCoo::from_coo(&x).storage_bytes();
    let alto = cstf_formats::Alto::from_coo(&x).storage_bytes();
    let blco = cstf_formats::Blco::from_coo(&x).storage_bytes();
    w(format!(
        "storage:  COO {coo} B, CSF {csf} B, HiCOO {hicoo} B, ALTO {alto} B, BLCO {blco} B"
    ))?;
    Ok(())
}

/// Merges `inner`'s components into `fp` without a prefix — repeated names
/// accumulate, which is how the per-mode trees of an all-mode CSF fold
/// into one breakdown.
fn merge_components(fp: &mut Footprint, inner: &Footprint) {
    for (name, bytes) in inner.components() {
        fp.add(name, *bytes);
    }
}

/// Compiles `x` into the named format and returns its deep heap footprint
/// — the bytes the factorize engine would actually keep resident. "csf"
/// is the all-mode compilation (one tree per mode), matching the engine.
fn memstat_footprint(x: &SparseTensor, format: &str) -> Result<Footprint, CliError> {
    let mut fp = Footprint::new();
    match format {
        "coo" => merge_components(&mut fp, &x.footprint()),
        "csf" => {
            for m in 0..x.nmodes() {
                merge_components(&mut fp, &cstf_formats::Csf::from_coo(x, m).footprint());
            }
        }
        "csf1" | "csfone" => {
            merge_components(&mut fp, &cstf_formats::Csf::from_coo(x, 0).footprint())
        }
        "hicoo" => merge_components(&mut fp, &cstf_formats::HiCoo::from_coo(x).footprint()),
        "alto" => merge_components(&mut fp, &cstf_formats::Alto::from_coo(x).footprint()),
        "blco" => merge_components(&mut fp, &cstf_formats::Blco::from_coo(x).footprint()),
        _ => {
            return Err(CliError::Args(ArgError::BadValue {
                key: "format".into(),
                value: format.into(),
                expected: "coo|csf|csf1|hicoo|alto|blco",
            }))
        }
    }
    Ok(fp)
}

/// Like [`memstat_footprint`], but for one *shard* of the mode-`mode`
/// sweep: the sharded driver compiles a single CSF tree rooted at the
/// shard's own mode (not the all-mode forest), so sizing a shard with the
/// all-mode recipe would overstate CSF by ~`nmodes`×.
fn memstat_shard_footprint(
    s: &SparseTensor,
    format: &str,
    mode: usize,
) -> Result<Footprint, CliError> {
    if format == "csf" {
        let mut fp = Footprint::new();
        merge_components(&mut fp, &cstf_formats::Csf::from_coo(s, mode).footprint());
        return Ok(fp);
    }
    memstat_footprint(s, format)
}

/// Parses `--memory-budget BYTES` (shared by `factorize` and `memstat`).
fn parse_memory_budget(p: &ParsedArgs) -> Result<Option<u64>, CliError> {
    match p.options.get("memory-budget") {
        None => Ok(None),
        Some(text) => text.parse::<u64>().map(Some).map_err(|_| {
            CliError::Args(ArgError::BadValue {
                key: "memory-budget".into(),
                value: text.clone(),
                expected: "bytes (integer)",
            })
        }),
    }
}

/// Byte-exact bytes of the rank-`rank` factor panels for `shape` (they
/// stay device-resident for the whole run; only the tensor is tiled).
fn factor_panel_bytes(shape: &[usize], rank: usize) -> u64 {
    shape.iter().map(|&d| MemoryFootprint::heap_bytes(&cstf_linalg::Mat::zeros(d, rank))).sum()
}

/// Resolves `--memory-budget` into the smallest admissible tile count for
/// this (tensor, format, rank): the compiled format streams in `K` tiles
/// (two resident under double-buffering) while the factor panels stay
/// device-resident — the residency model of
/// [`cstf_device::suggested_tile_count`].
fn resolve_budget_tiles(
    x: &SparseTensor,
    format_name: &str,
    rank: usize,
    budget: u64,
) -> Result<usize, CliError> {
    let tensor_bytes = memstat_footprint(x, format_name)?.total();
    let fixed_bytes = factor_panel_bytes(x.shape(), rank);
    match cstf_device::suggested_tile_count(tensor_bytes, fixed_bytes, budget) {
        Some(k) => Ok(k as usize),
        None => Err(CliError::Unfit(format!(
            "no tile count fits --memory-budget {budget}: the rank-{rank} factor panels \
             need {fixed_bytes} bytes resident, leaving no room for two tile buffers \
             of the {tensor_bytes}-byte {format_name} tensor"
        ))),
    }
}

/// One planned (format → fit) row of the memstat report.
struct MemstatRow {
    format: String,
    footprint: Footprint,
    per_device: Vec<u64>,
    binding_mode: usize,
    fit: cstf_device::DeviceFit,
    suggested_tiles: Option<u64>,
}

/// `cstf memstat`: byte-exact footprint accounting plus device-occupancy
/// fit planning (DESIGN.md §14). Required bytes per device = the compiled
/// format structure plus a full factor replica (every device holds all
/// factor matrices). With `--gpus N > 1` the sharded driver re-partitions
/// per mode sweep, so the binding figure is the *max over all modes* of the
/// heaviest nnz-balanced shard — sizing only the mode-0 sweep under-counts
/// skewed tensors. A config over its budget exits 4 after writing the exact
/// deficit plus the smallest tile count `K` whose out-of-core streaming run
/// (`--memory-budget`/`--tiles`, DESIGN.md §16) would fit.
fn cmd_memstat(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    // The FILE positional is shorthand for --input, mirroring `report DIR`.
    let x = if let Some(path) = p.positionals.first() {
        let file = std::path::Path::new(path);
        if !file.exists() {
            return Err(CliError::Input(format!("{path}: no such file (expected a .tns tensor)")));
        }
        if file.is_dir() {
            return Err(CliError::Input(format!("{path}: is a directory, expected a .tns file")));
        }
        cstf_tensor::read_tns_file(path)
            .map_err(|e| CliError::Input(format!("failed to read {path}: {e}")))?
    } else {
        load_tensor(p)?
    };
    let rank = p.parse_or("rank", 16usize, "integer")?;
    let gpus = p.parse_or("gpus", 1usize, "integer")?.max(1);
    let spec = parse_device(p.get_or("device", "h100"))?;
    let budget = parse_memory_budget(p)?;
    let formats: Vec<String> = match p.options.get("format") {
        Some(f) => vec![f.clone()],
        None => ["coo", "csf", "hicoo", "alto", "blco"].iter().map(|s| s.to_string()).collect(),
    };

    // Every device holds a full factor replica (the sharded driver
    // all-gathers rows back into each device's copy). Mat::zeros allocates
    // exactly rows*cols doubles, so this is byte-exact, not an estimate.
    let factor_bytes: u64 = x
        .shape()
        .iter()
        .map(|&d| MemoryFootprint::heap_bytes(&cstf_linalg::Mat::zeros(d, rank)))
        .sum();

    // The sharded driver re-shards per mode sweep (mode m's MTTKRP runs on
    // mode-m nnz-balanced shards), so plan against EVERY mode's sharding and
    // bind on the worst one — a mode-1-skewed tensor can have a mode-1 shard
    // far heavier than any mode-0 shard.
    let mode_shards: Vec<Vec<SparseTensor>> = if gpus > 1 {
        (0..x.nmodes())
            .map(|m| {
                cstf_formats::nnz_balanced_ranges(&x, m, gpus)
                    .iter()
                    .map(|r| cstf_formats::extract_mode_rows(&x, m, r))
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut rows: Vec<MemstatRow> = Vec::new();
    for name in &formats {
        let (footprint, per_device, binding_mode) = if gpus > 1 {
            let mut best: Option<(usize, Vec<Footprint>, Vec<u64>, u64)> = None;
            for (m, shards) in mode_shards.iter().enumerate() {
                let fps: Vec<Footprint> = shards
                    .iter()
                    .map(|s| memstat_shard_footprint(s, name, m))
                    .collect::<Result<_, _>>()?;
                let per: Vec<u64> = fps.iter().map(Footprint::total).collect();
                let heaviest = per.iter().copied().max().unwrap_or(0);
                if best.as_ref().is_none_or(|(_, _, _, h)| heaviest > *h) {
                    best = Some((m, fps, per, heaviest));
                }
            }
            let (m, fps, per, _) = best.expect("nmodes >= 1");
            let idx = per.iter().enumerate().max_by_key(|(_, b)| **b).map(|(i, _)| i).unwrap_or(0);
            (fps.into_iter().nth(idx).unwrap(), per, m)
        } else {
            let fp = memstat_footprint(&x, name)?;
            let total = fp.total();
            (fp, vec![total], 0)
        };
        let tensor_bytes = per_device.iter().copied().max().unwrap_or(0);
        let fit = cstf_device::plan_device_fit(tensor_bytes + factor_bytes, &spec, budget);
        // The out-of-core remedy is single-device, so only offer a tile
        // count when the plan is too (the sharded driver rejects --tiles).
        let suggested_tiles = if gpus == 1 {
            cstf_device::suggested_tile_count(tensor_bytes, factor_bytes, fit.capacity_bytes)
        } else {
            None
        };
        rows.push(MemstatRow {
            format: name.clone(),
            footprint,
            per_device,
            binding_mode,
            fit,
            suggested_tiles,
        });
    }
    let fits_all = rows.iter().all(|r| r.fit.fits);
    let capacity = rows.first().map_or(0, |r| r.fit.capacity_bytes);

    let io = |e: std::io::Error| CliError::Input(e.to_string());
    if p.has_flag("json") {
        let occupancy_json = |o: f64| {
            if o.is_finite() {
                format!("{o:.6}")
            } else {
                "null".to_string()
            }
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"shape\": {:?},\n", x.shape()));
        s.push_str(&format!("  \"nnz\": {},\n", x.nnz()));
        s.push_str(&format!("  \"rank\": {rank},\n"));
        s.push_str(&format!("  \"gpus\": {gpus},\n"));
        s.push_str(&format!("  \"device\": {:?},\n", spec.name));
        s.push_str(&format!("  \"capacity_bytes\": {capacity},\n"));
        s.push_str(&format!("  \"factor_bytes\": {factor_bytes},\n"));
        s.push_str("  \"formats\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let tensor_bytes = r.per_device.iter().copied().max().unwrap_or(0);
            s.push_str("    {\n");
            s.push_str(&format!("      \"format\": {:?},\n", r.format));
            s.push_str(&format!("      \"tensor_bytes\": {tensor_bytes},\n"));
            let per: Vec<String> = r.per_device.iter().map(u64::to_string).collect();
            s.push_str(&format!("      \"per_device_tensor_bytes\": [{}],\n", per.join(", ")));
            s.push_str(&format!("      \"required_bytes\": {},\n", r.fit.required_bytes));
            s.push_str(&format!("      \"occupancy\": {},\n", occupancy_json(r.fit.occupancy)));
            s.push_str(&format!("      \"fits\": {},\n", r.fit.fits));
            s.push_str(&format!("      \"deficit_bytes\": {},\n", r.fit.deficit_bytes));
            s.push_str(&format!("      \"headroom_bytes\": {},\n", r.fit.headroom_bytes));
            s.push_str(&format!("      \"binding_mode\": {},\n", r.binding_mode));
            let tiles_json = r.suggested_tiles.map_or("null".to_string(), |k| k.to_string());
            s.push_str(&format!("      \"suggested_tiles\": {tiles_json},\n"));
            let comps: Vec<String> =
                r.footprint.as_map().iter().map(|(n, b)| format!("{n:?}: {b}")).collect();
            s.push_str(&format!("      \"components\": {{{}}}\n", comps.join(", ")));
            s.push_str(if i + 1 < rows.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"fits_all\": {fits_all}\n"));
        s.push_str("}\n");
        write!(out, "{s}").map_err(io)?;
    } else {
        writeln!(out, "tensor:  shape {:?}, nnz {}", x.shape(), x.nnz()).map_err(io)?;
        let budget_note = if budget.is_some() { " (--memory-budget)" } else { " DRAM" };
        writeln!(
            out,
            "plan:    rank {rank}, gpus {gpus}, device {}, budget {capacity} B{budget_note}",
            spec.name
        )
        .map_err(io)?;
        writeln!(out, "factors: {factor_bytes} B replicated per device").map_err(io)?;
        writeln!(
            out,
            "  {:<7} {:>14} {:>14} {:>11}  FIT",
            "FORMAT", "TENSOR_B", "REQUIRED_B", "OCCUPANCY"
        )
        .map_err(io)?;
        for r in &rows {
            let tensor_bytes = r.per_device.iter().copied().max().unwrap_or(0);
            writeln!(
                out,
                "  {:<7} {:>14} {:>14} {:>11.3e}  {}",
                r.format,
                tensor_bytes,
                r.fit.required_bytes,
                r.fit.occupancy,
                if r.fit.fits {
                    "yes".to_string()
                } else {
                    format!("NO (deficit {} B)", r.fit.deficit_bytes)
                }
            )
            .map_err(io)?;
            for (name, bytes) in r.footprint.as_map() {
                writeln!(out, "    {name:<24} {bytes:>12} B").map_err(io)?;
            }
            if gpus > 1 {
                writeln!(
                    out,
                    "    per-device tensor bytes (binding mode {}): {:?}",
                    r.binding_mode, r.per_device
                )
                .map_err(io)?;
            }
            if !r.fit.fits {
                match r.suggested_tiles {
                    Some(k) => writeln!(
                        out,
                        "    remedy: --memory-budget {} --tiles {k} streams {} in {k} tiles",
                        r.fit.capacity_bytes, r.format
                    )
                    .map_err(io)?,
                    None if gpus == 1 => writeln!(
                        out,
                        "    remedy: none — the factor panels alone exceed the budget"
                    )
                    .map_err(io)?,
                    None => {}
                }
            }
        }
    }

    if !fits_all {
        let worst =
            rows.iter().filter(|r| !r.fit.fits).max_by_key(|r| r.fit.deficit_bytes).unwrap();
        let remedy = match worst.suggested_tiles {
            Some(k) => format!(
                "; smallest fitting tile count is {k} — rerun with \
                 `cstf factorize --memory-budget {} --tiles {k} --format {}`",
                worst.fit.capacity_bytes, worst.format
            ),
            None if gpus == 1 => {
                "; no tile count fits — the factor panels alone exceed the budget".to_string()
            }
            None => String::new(),
        };
        return Err(CliError::Unfit(format!(
            "{} needs {} bytes against a budget of {} bytes (deficit {} bytes to stream){remedy}",
            worst.format,
            worst.fit.required_bytes,
            worst.fit.capacity_bytes,
            worst.fit.deficit_bytes
        )));
    }
    Ok(())
}

fn cmd_datasets(out: &mut dyn Write) -> Result<(), CliError> {
    for e in cstf_data::table2() {
        writeln!(
            out,
            "{:<11} dims {:?}, nnz {}, density {:.1e}",
            e.name,
            e.paper_dims,
            e.paper_nnz,
            e.paper_density()
        )
        .map_err(|er| CliError::Input(er.to_string()))?;
    }
    Ok(())
}

fn cmd_devices(out: &mut dyn Write) -> Result<(), CliError> {
    for d in DeviceSpec::table1() {
        writeln!(
            out,
            "{:<28} {:<16} {:>8.0} GFLOP/s {:>7.0} GB/s  LLC {:>6.1} MiB",
            d.name, d.uarch, d.peak_gflops_f64, d.mem_bw_gbs, d.llc_mib
        )
        .map_err(|e| CliError::Input(e.to_string()))?;
    }
    Ok(())
}

fn cmd_placement(p: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let x = load_tensor(p)?;
    let w = WorkloadShape {
        shape: x.shape().to_vec(),
        nnz: x.nnz(),
        rank: p.parse_or("rank", 16usize, "integer")?,
        inner_iters: 10,
        format: parse_format(p.get_or("format", "blco"))?,
    };
    let gpu = parse_device(p.get_or("device", "h100"))?;
    let plan = recommend_placement(&w, &DeviceSpec::icelake_xeon(), &gpu);
    let place = |pl: Placement| match pl {
        Placement::Cpu => "CPU",
        Placement::Gpu => "GPU",
    };
    writeln!(
        out,
        "recommended: MTTKRP on {}, UPDATE pipeline on {} (predicted {:.3e}s/iter; all-CPU {:.3e}s, all-GPU {:.3e}s)",
        place(plan.mttkrp),
        place(plan.update),
        plan.predicted_s,
        plan.all_cpu_s,
        plan.all_gpu_s
    )
    .map_err(|e| CliError::Input(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let parsed = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())?;
        let mut buf = Vec::new();
        dispatch(&parsed, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    #[test]
    fn datasets_lists_all_ten() {
        let out = run(&["datasets"]).unwrap();
        for name in ["NIPS", "Amazon", "Flickr"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert_eq!(out.lines().count(), 10);
    }

    #[test]
    fn devices_lists_table1() {
        let out = run(&["devices"]).unwrap();
        assert!(out.contains("A100") && out.contains("H100") && out.contains("Xeon"));
    }

    #[test]
    fn factorize_catalog_dataset_text_report() {
        let out = run(&[
            "factorize",
            "--dataset",
            "Chicago",
            "--nnz",
            "4000",
            "--rank",
            "4",
            "--iters",
            "3",
        ])
        .unwrap();
        assert!(out.contains("final fit:"), "{out}");
        assert!(out.contains("MTTKRP"));
        assert!(out.contains("UPDATE"));
    }

    #[test]
    fn factorize_json_report_is_valid_json() {
        let out = run(&[
            "factorize",
            "--dataset",
            "NIPS",
            "--nnz",
            "3000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["rank"], 3);
        assert_eq!(v["iterations"], 2);
        assert!(v["final_fit"].as_f64().unwrap().is_finite());
    }

    #[test]
    fn info_reports_storage_for_all_formats() {
        let out = run(&["info", "--dataset", "Uber", "--nnz", "3000"]).unwrap();
        assert!(out.contains("COO") && out.contains("CSF") && out.contains("BLCO"));
        assert!(out.contains("density:"));
    }

    /// Like `run` but keeps whatever was written to `out` even when the
    /// command errors — memstat writes its report (with the exact deficit)
    /// before returning the unfit error.
    fn run_capture(args: &[&str]) -> (Result<(), CliError>, String) {
        let parsed = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
        let mut buf = Vec::new();
        let r = dispatch(&parsed, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn memstat_json_covers_all_five_formats() {
        let out = run(&["memstat", "--dataset", "Uber", "--nnz", "3000", "--json"]).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let formats = v["formats"].as_array().unwrap();
        assert_eq!(formats.len(), 5, "{out}");
        assert_eq!(v["capacity_bytes"].as_u64().unwrap(), 80_000_000_000, "default h100");
        assert!(v["fits_all"].as_bool().unwrap());
        let factor_bytes = v["factor_bytes"].as_u64().unwrap();
        assert!(factor_bytes > 0);
        for f in formats {
            let tensor = f["tensor_bytes"].as_u64().unwrap();
            let required = f["required_bytes"].as_u64().unwrap();
            assert!(tensor > 0, "{out}");
            assert_eq!(required, tensor + factor_bytes, "required = tensor + factor replica");
            assert!(f["fits"].as_bool().unwrap());
            assert_eq!(f["deficit_bytes"].as_u64().unwrap(), 0);
        }
    }

    #[test]
    fn memstat_is_byte_deterministic_across_runs() {
        let args = ["memstat", "--dataset", "NIPS", "--nnz", "2500", "--json"];
        let a = run(&args).unwrap();
        let b = run(&args).unwrap();
        assert_eq!(a, b, "two runs must produce byte-identical reports");
    }

    #[test]
    fn memstat_tiny_budget_exits_unfit_with_exact_deficit() {
        let (res, out) = run_capture(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--format",
            "coo",
            "--memory-budget",
            "1024",
            "--json",
        ]);
        let err = res.unwrap_err();
        assert!(matches!(err, CliError::Unfit(_)), "{err}");
        assert_eq!(err.exit_code(), 4);
        let v: serde_json::Value = serde_json::from_str(&out).expect("report written before error");
        assert_eq!(v["fits_all"].as_bool(), Some(false));
        let f = &v["formats"].as_array().unwrap()[0];
        let required = f["required_bytes"].as_u64().unwrap();
        assert!(required > 1024);
        assert_eq!(f["deficit_bytes"].as_u64().unwrap(), required - 1024, "exact deficit");
        assert_eq!(f["fits"].as_bool(), Some(false));
    }

    #[test]
    fn memstat_shards_report_per_device_bytes() {
        let out = run(&[
            "memstat",
            "--dataset",
            "NIPS",
            "--nnz",
            "2000",
            "--format",
            "blco",
            "--gpus",
            "2",
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let f = &v["formats"].as_array().unwrap()[0];
        let per = f["per_device_tensor_bytes"].as_array().unwrap();
        assert_eq!(per.len(), 2);
        let max = per.iter().map(|b| b.as_u64().unwrap()).max().unwrap();
        assert_eq!(f["tensor_bytes"].as_u64(), Some(max), "fit plans the heaviest device");
    }

    #[test]
    fn memstat_gpus_binds_on_the_heaviest_mode_not_mode_zero() {
        // Deliberately mode-1-skewed: mode-0 indices spread evenly, but 90%
        // of nonzeros share mode-1 index 0. Contiguous nnz-balancing cannot
        // split a single index, so the heaviest mode-1 shard carries ~90% of
        // the tensor while mode-0 shards stay balanced. The old planner
        // sized only the mode-0 sweep and under-reported this.
        let mut idx = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut vals = Vec::new();
        for t in 0..200u32 {
            idx[0].push(t % 64);
            idx[1].push(if t < 180 { 0 } else { 1 + t % 3 });
            idx[2].push(t % 8);
            vals.push(1.0 + f64::from(t));
        }
        let x = SparseTensor::new(vec![64, 4, 8], idx, vals);
        let dir = std::env::temp_dir().join("cstf_cli_memstat_skew");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("skew.tns");
        cstf_tensor::write_tns_file(&x, &path).unwrap();
        let out =
            run(&["memstat", path.to_str().unwrap(), "--format", "coo", "--gpus", "2", "--json"])
                .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let f = &v["formats"].as_array().unwrap()[0];
        assert_eq!(f["binding_mode"].as_u64(), Some(1), "{out}");
        let per: Vec<u64> = f["per_device_tensor_bytes"]
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b.as_u64().unwrap())
            .collect();
        let heaviest = *per.iter().max().unwrap();
        assert_eq!(f["tensor_bytes"].as_u64(), Some(heaviest));
        // The binding mode-1 shard holds ~90% of the nnz while its sibling
        // gets ~10%; a balanced mode-0 split would make the two devices
        // near-equal. COO bytes scale with nnz, so the reported split must
        // be lopsided, not balanced.
        let lightest = *per.iter().min().unwrap();
        assert!(
            heaviest > 3 * lightest,
            "binding shard must reflect the mode-1 skew: {per:?}\n{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memstat_over_budget_suggests_smallest_fitting_tile_count() {
        let probe = run(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--format",
            "coo",
            "--json",
        ])
        .unwrap();
        let pv: serde_json::Value = serde_json::from_str(&probe).unwrap();
        let f0 = &pv["formats"].as_array().unwrap()[0];
        let tensor = f0["tensor_bytes"].as_u64().unwrap();
        let factors = pv["factor_bytes"].as_u64().unwrap();
        // One byte short of in-core: the remedy must be tiling, and the
        // suggested K must satisfy the double-buffered residency bound.
        let budget = (tensor + factors - 1).to_string();
        let (res, out) = run_capture(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--format",
            "coo",
            "--memory-budget",
            &budget,
            "--json",
        ]);
        let err = res.unwrap_err();
        assert!(matches!(err, CliError::Unfit(_)), "{err}");
        let msg = err.to_string();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let f = &v["formats"].as_array().unwrap()[0];
        let k = f["suggested_tiles"].as_u64().expect("a tile count must be suggested");
        assert!(k >= 2, "one byte short of in-core needs real tiling: {out}");
        let b: u64 = budget.parse().unwrap();
        assert!(2 * tensor.div_ceil(k) + factors <= b, "suggested K must actually fit");
        assert!(
            2 * tensor.div_ceil(k - 1) + factors > b || k - 1 == 1,
            "suggested K must be minimal"
        );
        assert!(msg.contains(&format!("--tiles {k}")), "remedy missing from error: {msg}");
        assert!(msg.contains("--memory-budget"), "{msg}");
        // Text mode carries the same remedy line.
        let (tres, tout) = run_capture(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--format",
            "coo",
            "--memory-budget",
            &budget,
        ]);
        assert!(tres.is_err());
        assert!(tout.contains("remedy:") && tout.contains("--tiles"), "{tout}");
    }

    #[test]
    fn memstat_budget_below_factor_panels_suggests_nothing() {
        let (res, out) = run_capture(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "1000",
            "--format",
            "coo",
            "--memory-budget",
            "64",
            "--json",
        ]);
        assert!(res.is_err());
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let f = &v["formats"].as_array().unwrap()[0];
        assert!(f["suggested_tiles"].is_null(), "panels alone exceed 64 B: {out}");
    }

    #[test]
    fn tiles_flag_produces_bitwise_identical_factors() {
        let base = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--json",
        ];
        let mut one: Vec<&str> = base.to_vec();
        one.extend(["--tiles", "1"]);
        let mut three: Vec<&str> = base.to_vec();
        three.extend(["--tiles", "3"]);
        let v1: serde_json::Value = serde_json::from_str(&run(&one).unwrap()).unwrap();
        let v3: serde_json::Value = serde_json::from_str(&run(&three).unwrap()).unwrap();
        assert_eq!(v1["fits"], v3["fits"], "fit history must match bitwise");
        assert_eq!(
            v1["factor_checksum"], v3["factor_checksum"],
            "factor bits must be identical across tile counts"
        );
        assert_eq!(v3["tiles"], 3);
        assert_eq!(v1["tiles"], 1);
        assert!(v3["tiling"]["tile_transfers"].as_u64().unwrap() > 0);
        assert!(v3["tiling"]["streamed_bytes"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn memory_budget_forces_tiling_and_matches_in_core() {
        // Size the blco tensor + rank-3 panels, then offer one byte less
        // than in-core residency: factorize must pick K >= 2 on its own and
        // still reproduce the unbudgeted factors bit-for-bit.
        let probe = run(&[
            "memstat",
            "--dataset",
            "Uber",
            "--nnz",
            "1500",
            "--rank",
            "3",
            "--format",
            "blco",
            "--json",
        ])
        .unwrap();
        let pv: serde_json::Value = serde_json::from_str(&probe).unwrap();
        let required = pv["formats"][0]["required_bytes"].as_u64().unwrap();
        let budget = (required - 1).to_string();
        let base = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "1500",
            "--rank",
            "3",
            "--iters",
            "2",
            "--json",
        ];
        let mut budgeted: Vec<&str> = base.to_vec();
        budgeted.extend(["--memory-budget", &budget]);
        let vb: serde_json::Value = serde_json::from_str(&run(&budgeted).unwrap()).unwrap();
        let v0: serde_json::Value = serde_json::from_str(&run(&base).unwrap()).unwrap();
        assert!(vb["tiles"].as_u64().unwrap() >= 2, "budget must force tiling: {vb}");
        assert_eq!(v0["factor_checksum"], vb["factor_checksum"]);
        assert_eq!(v0["fits"], vb["fits"]);
    }

    #[test]
    fn tiles_with_gpus_is_rejected() {
        let err = run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "1000",
            "--iters",
            "1",
            "--gpus",
            "2",
            "--tiles",
            "2",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err}");
        assert!(err.to_string().contains("--gpus 1"), "{err}");
    }

    #[test]
    fn tiled_factorize_streams_tns_input() {
        // --tiles with --input goes through the streaming reader; the
        // result must match the in-core run on the same file bit-for-bit.
        let dir = std::env::temp_dir().join("cstf_cli_tiled_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.tns");
        let mut idx = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut vals = Vec::new();
        for t in 0..400u32 {
            idx[0].push(t % 13);
            idx[1].push((t * 7) % 11);
            idx[2].push((t * 3) % 9);
            vals.push(0.25 + f64::from(t % 17));
        }
        let x = SparseTensor::new(vec![13, 11, 9], idx, vals);
        cstf_tensor::write_tns_file(&x, &path).unwrap();
        let base = [
            "factorize",
            "--input",
            path.to_str().unwrap(),
            "--rank",
            "3",
            "--iters",
            "2",
            "--json",
        ];
        let mut tiled: Vec<&str> = base.to_vec();
        tiled.extend(["--tiles", "3"]);
        let v0: serde_json::Value = serde_json::from_str(&run(&base).unwrap()).unwrap();
        let v3: serde_json::Value = serde_json::from_str(&run(&tiled).unwrap()).unwrap();
        assert_eq!(v0["factor_checksum"], v3["factor_checksum"], "streamed == in-core");
        assert_eq!(v3["tiles"], 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memstat_text_lists_components() {
        let out =
            run(&["memstat", "--dataset", "Uber", "--nnz", "1500", "--format", "coo"]).unwrap();
        assert!(out.contains("FORMAT"), "{out}");
        assert!(out.contains("values"), "component breakdown expected:\n{out}");
        assert!(out.contains("yes"), "{out}");
    }

    #[test]
    fn memstat_rejects_unknown_format() {
        let err =
            run(&["memstat", "--dataset", "Uber", "--nnz", "1000", "--format", "sf3"]).unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err}");
    }

    #[test]
    fn memstat_sizes_csf1_as_single_tree() {
        // csf1 compiles one tree rooted at mode 0, so it must cost strictly
        // less than the all-modes CSF forest.
        let one = run(&["memstat", "--dataset", "Uber", "--nnz", "1000", "--format", "csf1"]);
        assert!(one.is_ok(), "{one:?}");
        let grab = |txt: &str| {
            txt.lines()
                .find(|l| l.trim_start().starts_with("csf"))
                .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        let forest =
            run(&["memstat", "--dataset", "Uber", "--nnz", "1000", "--format", "csf"]).unwrap();
        assert!(grab(&one.unwrap()) < grab(&forest));
    }

    #[test]
    fn placement_recommends_something() {
        let out = run(&["placement", "--dataset", "NELL2", "--nnz", "5000"]).unwrap();
        assert!(out.contains("recommended: MTTKRP on"), "{out}");
    }

    #[test]
    fn l1_constraint_parses_and_runs() {
        let out = run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--constraint",
            "l1:0.5",
        ])
        .unwrap();
        assert!(out.contains("final fit:"));
    }

    #[test]
    fn bad_constraint_is_rejected() {
        let err = run(&["factorize", "--dataset", "Uber", "--constraint", "magic"]).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::BadValue { .. })));
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(matches!(
            run(&["frobnicate"]).unwrap_err(),
            CliError::Args(ArgError::UnknownCommand(_))
        ));
    }

    #[test]
    fn missing_input_is_rejected() {
        assert!(matches!(run(&["info"]).unwrap_err(), CliError::Args(ArgError::MissingOption(_))));
    }

    #[test]
    fn trace_flag_writes_valid_chrome_trace() {
        let dir = std::env::temp_dir().join("cstf_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--trace",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
        let events = v.as_array().unwrap();
        assert!(events.len() > 20, "expected many kernel events, got {}", events.len());
        assert!(events.iter().any(|e| e["name"] == "mttkrp"));
        assert!(events.iter().any(|e| e["cat"] == "UPDATE"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn telemetry_dir_then_report_round_trip() {
        let dir = std::env::temp_dir().join("cstf_cli_telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--telemetry",
            &d,
        ])
        .unwrap();
        for name in ["run.json", "events.jsonl", "trace.json", "metrics.prom"] {
            assert!(dir.join(name).exists(), "missing artifact {name}");
        }

        let text = run(&["report", &d]).unwrap();
        assert!(text.contains("final fit"), "{text}");
        assert!(text.contains("MTTKRP"), "{text}");

        let line = run(&["report", &d, "--json"]).unwrap();
        assert_eq!(line.trim().lines().count(), 1);
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["iterations"], 2);
        assert_eq!(v["rank"], 3);
        assert!(v["phases"]["mttkrp"].as_f64().unwrap() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_without_dir_is_rejected() {
        assert!(matches!(
            run(&["report"]).unwrap_err(),
            CliError::Args(ArgError::MissingOption(_))
        ));
    }

    #[test]
    fn faulted_run_recovers_and_reports() {
        let out = run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--faults",
            "seed=1,launch=1.0,max=2",
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(v["final_fit"].as_f64().unwrap().is_finite());
        assert!(v["recovery"]["transient_retries"].as_f64().unwrap() >= 1.0);
        assert_eq!(v["recovery"]["clean"], serde_json::Value::Bool(false));
    }

    #[test]
    fn bad_fault_spec_is_rejected() {
        let err =
            run(&["factorize", "--dataset", "Uber", "--nnz", "2000", "--faults", "launch=banana"])
                .unwrap_err();
        assert!(matches!(err, CliError::Input(m) if m.contains("--faults")));
    }

    #[test]
    fn resume_without_checkpoint_dir_is_rejected() {
        let err =
            run(&["factorize", "--dataset", "Uber", "--nnz", "2000", "--resume"]).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::MissingOption(_))));
    }

    #[test]
    fn zero_rank_is_a_clean_error() {
        let err =
            run(&["factorize", "--dataset", "Uber", "--nnz", "2000", "--rank", "0"]).unwrap_err();
        assert!(matches!(err, CliError::Factorize(_)), "{err:?}");
        assert!(format!("{err}").contains("rank"), "{err}");
    }

    #[test]
    fn checkpoint_resume_smoke_through_cli() {
        let dir = std::env::temp_dir().join("cstf_cli_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        let base = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--checkpoint",
            &d,
            "--checkpoint-every",
            "2",
            "--json",
        ];
        // First leg: 3 iterations, snapshots land in the checkpoint dir.
        let mut first: Vec<&str> = base.to_vec();
        first.extend(["--iters", "3"]);
        run(&first).unwrap();
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0, "no snapshots written");
        // Second leg: resume and extend to 6 iterations.
        let mut second: Vec<&str> = base.to_vec();
        second.extend(["--iters", "6", "--resume"]);
        let resumed = run(&second).unwrap();
        let rv: serde_json::Value = serde_json::from_str(&resumed).unwrap();
        assert_eq!(rv["iterations"], 6);
        // Reference: uninterrupted 6-iteration run must match bitwise
        // (identical fit history).
        let mut reference: Vec<&str> = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "6",
            "--json",
        ]
        .to_vec();
        let _ = &mut reference; // same shape as the other legs for clarity
        let uninterrupted = run(&reference).unwrap();
        let uv: serde_json::Value = serde_json::from_str(&uninterrupted).unwrap();
        assert_eq!(rv["fits"], uv["fits"], "resumed run must replay identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gpus_flag_produces_bitwise_identical_factors() {
        let base = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--json",
        ];
        let mut one: Vec<&str> = base.to_vec();
        one.extend(["--gpus", "1"]);
        let mut four: Vec<&str> = base.to_vec();
        four.extend(["--gpus", "4"]);
        let v1: serde_json::Value = serde_json::from_str(&run(&one).unwrap()).unwrap();
        let v4: serde_json::Value = serde_json::from_str(&run(&four).unwrap()).unwrap();
        assert_eq!(v1["fits"], v4["fits"], "fit history must match bitwise");
        assert_eq!(
            v1["factor_checksum"], v4["factor_checksum"],
            "factor bits must be identical across group sizes"
        );
        assert_eq!(v4["gpus"], 4);
        assert_eq!(v4["devices"].as_array().unwrap().len(), 4);
        for dev in v4["devices"].as_array().unwrap() {
            assert!(dev["collective_bytes"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn sharded_text_report_lists_every_device() {
        let out = run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--gpus",
            "2",
            "--nvlink",
            "600",
        ])
        .unwrap();
        assert!(out.contains("sharded across 2"), "{out}");
        assert!(out.contains("gpu0:") && out.contains("gpu1:"), "{out}");
        assert!(out.contains("final fit:"), "{out}");
    }

    #[test]
    fn sharded_trace_gives_each_device_its_own_pid() {
        let dir = std::env::temp_dir().join("cstf_cli_mgpu_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--gpus",
            "3",
            "--trace",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid trace JSON");
        let events = v.as_array().unwrap();
        for pid in [1u64, 2, 3] {
            assert!(
                events.iter().any(|e| e["pid"] == pid && e["name"] == "mttkrp_shard"),
                "no shard MTTKRP events for pid {pid}"
            );
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn frostt_file_roundtrip_through_cli() {
        let dir = std::env::temp_dir().join("cstf_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tns");
        std::fs::write(&path, "1 1 1 2.0\n2 2 2 3.0\n3 1 2 1.5\n").unwrap();
        let out = run(&["info", "--input", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("nnz:      3"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_renders_roofline_table_and_eq5_check() {
        let out = run(&[
            "analyze",
            "--dataset",
            "NELL2",
            "--nnz",
            "3000",
            "--rank",
            "16",
            "--iters",
            "2",
            "--update",
            "admm",
            "--format",
            "coo",
            "--device",
            "a100",
        ])
        .unwrap();
        assert!(out.contains("ROOFLINE ATTRIBUTION"), "{out}");
        assert!(out.contains("mttkrp"), "{out}");
        assert!(out.contains("EQ. 3-5 CHECK"), "{out}");
        // Recalibrated unfused-ADMM ledger agrees with Eq. 5, so no drift.
        assert!(out.contains("[ok]"), "{out}");
        assert!(!out.contains("[DRIFT]"), "{out}");
        // Unfused ADMM at rank 16 sits far below the A100 ridge point.
        assert!(out.contains("bandwidth-bound"), "{out}");
    }

    #[test]
    fn analyze_json_reports_bounds_and_deviations() {
        let out = run(&[
            "analyze",
            "--dataset",
            "NELL2",
            "--nnz",
            "3000",
            "--rank",
            "32",
            "--iters",
            "2",
            "--update",
            "admm",
            "--format",
            "coo",
            "--device",
            "a100",
            "--json",
        ])
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["rank"], 32);
        assert!(v["ridge_intensity"].as_f64().unwrap() > 1.0);
        let kernels = v["devices"][0]["kernels"].as_array().unwrap();
        assert!(kernels.iter().any(|k| k["kernel"] == "mttkrp"));
        for a in v["admm_ai"].as_array().unwrap() {
            assert!(a["deviation"].as_f64().unwrap() < 0.05, "{a}");
            assert_eq!(a["flagged"], false, "{a}");
        }
    }

    #[test]
    fn perf_record_compare_roundtrip_and_injected_drift() {
        let dir = std::env::temp_dir().join("cstf_cli_perf_baselines");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        let config = [
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--iters",
            "2",
            "--format",
            "csf",
            "--baseline-dir",
            &d,
        ];
        let record: Vec<&str> = ["perf", "record"].iter().chain(config.iter()).copied().collect();
        let out = run(&record).unwrap();
        assert!(out.contains("baseline recorded"), "{out}");
        assert!(dir.join("uber-csf-r4-cuadmm-g1.json").exists());

        // Same config, same binary: counters are exact, so zero drift.
        let compare: Vec<&str> = ["perf", "compare"].iter().chain(config.iter()).copied().collect();
        let out = run(&compare).unwrap();
        assert!(out.contains("perf gate OK"), "{out}");

        // The injection hook adds one launch — the gate must name its key.
        std::env::set_var("CSTF_PERF_INJECT_LAUNCH", "1");
        let err = run(&compare).unwrap_err();
        std::env::remove_var("CSTF_PERF_INJECT_LAUNCH");
        assert_eq!(err.exit_code(), 3);
        let msg = format!("{err}");
        assert!(msg.contains("perf_inject_launch"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_compare_measured_band_ratchets_wall_clock() {
        let dir = std::env::temp_dir().join("cstf_cli_perf_band");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        let config = [
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--iters",
            "2",
            "--format",
            "csf",
            "--baseline-dir",
            &d,
        ];
        let record: Vec<&str> = ["perf", "record"].iter().chain(config.iter()).copied().collect();
        run(&record).unwrap();

        // An absurdly wide band cannot fail: wall-clock noise between two
        // in-process runs is orders of magnitude below it.
        let compare: Vec<&str> = ["perf", "compare"]
            .iter()
            .chain(config.iter())
            .chain(["--measured-band", "1000000000"].iter())
            .copied()
            .collect();
        let out = run(&compare).unwrap();
        assert!(out.contains("perf gate OK"), "{out}");

        // Doctor the stored baseline to claim near-zero wall-clock: the
        // current run's measured/modeled ratio now exceeds any sane band,
        // so compare must exit 3 via the aggregate ratchet (counters still
        // match exactly).
        let path = dir.join("uber-csf-r4-cuadmm-g1.json");
        let mut v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        for k in v["kernels"].as_array_mut().unwrap() {
            k["measured_s"] = serde_json::json!(1e-12);
        }
        std::fs::write(&path, serde_json::to_string_pretty(&v).unwrap()).unwrap();
        let banded: Vec<&str> = ["perf", "compare"]
            .iter()
            .chain(config.iter())
            .chain(["--measured-band", "0.5"].iter())
            .copied()
            .collect();
        let err = run(&banded).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(format!("{err}").contains("aggregate"), "{err}");

        // Without the flag the doctored wall-clock stays advisory.
        let compare: Vec<&str> = ["perf", "compare"].iter().chain(config.iter()).copied().collect();
        let out = run(&compare).unwrap();
        assert!(out.contains("perf gate OK"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_compare_without_baseline_is_a_clean_error() {
        let dir = std::env::temp_dir().join("cstf_cli_perf_nobase");
        let _ = std::fs::remove_dir_all(&dir);
        let err = run(&[
            "perf",
            "compare",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--iters",
            "2",
            "--baseline-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(&err, CliError::Input(m) if m.contains("perf record")), "{err}");
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn perf_requires_record_or_compare() {
        let err = run(&["perf", "--dataset", "Uber", "--nnz", "2000"]).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::MissingOption(_))));
        let err = run(&["perf", "replay", "--dataset", "Uber", "--nnz", "2000"]).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::BadValue { .. })));
    }

    #[test]
    fn sharded_perf_baseline_keys_every_device() {
        let dir = std::env::temp_dir().join("cstf_cli_perf_sharded");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        let config = [
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "4",
            "--iters",
            "2",
            "--gpus",
            "2",
            "--baseline-dir",
            &d,
        ];
        let record: Vec<&str> = ["perf", "record"].iter().chain(config.iter()).copied().collect();
        run(&record).unwrap();
        let text = std::fs::read_to_string(dir.join("uber-blco-r4-cuadmm-g2.json")).unwrap();
        let b = cstf_device::PerfBaseline::from_json(&text).unwrap();
        assert_eq!(b.gpus, 2);
        assert!(b.kernels.iter().any(|k| k.gpu == 0));
        assert!(b.kernels.iter().any(|k| k.gpu == 1));

        let compare: Vec<&str> = ["perf", "compare"].iter().chain(config.iter()).copied().collect();
        let out = run(&compare).unwrap();
        assert!(out.contains("perf gate OK"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_telemetry_report_shows_per_device_table() {
        let dir = std::env::temp_dir().join("cstf_cli_mgpu_telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "2",
            "--gpus",
            "2",
            "--telemetry",
            &d,
        ])
        .unwrap();
        assert!(dir.join("devices.json").exists());
        // metrics.prom carries a device label per kernel-key series.
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("device=\"0\""), "{prom}");
        assert!(prom.contains("device=\"1\""), "{prom}");
        cstf_telemetry::parse_prometheus(&prom).expect("valid exposition format");

        let text = run(&["report", &d]).unwrap();
        assert!(text.contains("PER-DEVICE BREAKDOWN"), "{text}");
        assert!(text.contains("gpu0") && text.contains("gpu1"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_on_missing_or_file_path_is_a_typed_error() {
        let err = run(&["report", "/definitely/not/a/real/dir"]).unwrap_err();
        assert!(matches!(&err, CliError::Input(m) if m.contains("no such directory")), "{err:?}");

        let file = std::env::temp_dir().join("cstf_cli_report_notadir.txt");
        std::fs::write(&file, "not a telemetry dir").unwrap();
        let err = run(&["report", file.to_str().unwrap()]).unwrap_err();
        assert!(matches!(&err, CliError::Input(m) if m.contains("not a directory")), "{err:?}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn memstat_on_missing_or_directory_path_is_a_typed_error() {
        let err = run(&["memstat", "/definitely/not/a/real/tensor.tns"]).unwrap_err();
        assert!(matches!(&err, CliError::Input(m) if m.contains("no such file")), "{err:?}");

        let dir = std::env::temp_dir().join("cstf_cli_memstat_dir");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run(&["memstat", dir.to_str().unwrap()]).unwrap_err();
        assert!(matches!(&err, CliError::Input(m) if m.contains("is a directory")), "{err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_sharded_json_reports_elasticity_and_matches_clean_checksum() {
        let base = [
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "4",
            "--gpus",
            "3",
            "--json",
        ];
        let clean: serde_json::Value =
            serde_json::from_str(&run(&base).unwrap()).expect("valid JSON");
        assert_eq!(clean["elasticity"]["clean"], true);
        assert_eq!(clean["elasticity"]["reshards"], 0);

        let chaos_args: Vec<&str> =
            base.iter().copied().chain(["--faults", "device-loss:1@it2"]).collect();
        let chaos: serde_json::Value =
            serde_json::from_str(&run(&chaos_args).unwrap()).expect("valid JSON");
        assert_eq!(chaos["elasticity"]["clean"], false);
        assert_eq!(chaos["elasticity"]["reshards"], 1);
        assert_eq!(chaos["elasticity"]["retired"][0]["device"], 1);
        assert_eq!(chaos["elasticity"]["retired"][0]["iteration"], 2);
        // Shrink-to-survivors keeps the model bitwise-identical.
        assert_eq!(chaos["factor_checksum"], clean["factor_checksum"]);
    }

    #[test]
    fn straggler_run_trips_deadlines_and_emits_group_metrics() {
        let dir = std::env::temp_dir().join("cstf_cli_straggler_telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        let out = run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "3",
            "--gpus",
            "2",
            "--faults",
            "straggler:1x9",
            "--telemetry",
            &d,
        ])
        .unwrap();
        assert!(out.contains("elasticity:"), "{out}");
        assert!(out.contains("deadline trips"), "{out}");

        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("cstf_group_deadline_trips_total{device=\"1\"}"), "{prom}");
        assert!(prom.contains("cstf_fault_straggler_total{device=\"1\"}"), "{prom}");
        cstf_telemetry::parse_prometheus(&prom).expect("valid exposition format");

        // The straggler shows up as instant fault events in the trace,
        // pinned to gpu1's pid (2).
        let trace: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("trace.json")).unwrap())
                .unwrap();
        let straggles: Vec<&serde_json::Value> =
            trace.as_array().unwrap().iter().filter(|e| e["name"] == "fault_straggler").collect();
        assert!(!straggles.is_empty(), "straggler fault instants present");
        assert!(straggles.iter().all(|e| e["pid"] == 2), "pinned to gpu1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn device_loss_run_emits_retire_and_reshard_metrics() {
        let dir = std::env::temp_dir().join("cstf_cli_loss_telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().unwrap().to_string();
        run(&[
            "factorize",
            "--dataset",
            "Uber",
            "--nnz",
            "2000",
            "--rank",
            "3",
            "--iters",
            "4",
            "--gpus",
            "3",
            "--faults",
            "device-loss:2@it2",
            "--telemetry",
            &d,
        ])
        .unwrap();
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("cstf_group_reshards_total 1"), "{prom}");
        assert!(prom.contains("cstf_group_devices_retired_total{device=\"2\"} 1"), "{prom}");
        assert!(prom.contains("cstf_group_retire_iteration{device=\"2\"} 2"), "{prom}");
        assert!(prom.contains("cstf_group_loss_detections_total"), "{prom}");
        cstf_telemetry::parse_prometheus(&prom).expect("valid exposition format");

        // The retire/reshard marks land in the multi-device trace.
        let trace: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("trace.json")).unwrap())
                .unwrap();
        let arr = trace.as_array().unwrap();
        let retired = arr.iter().find(|e| e["name"] == "device_retired").expect("retire mark");
        assert_eq!(retired["pid"], 3, "device 2 renders under pid 3");
        assert!(arr.iter().any(|e| e["name"] == "reshard"), "reshard marks present");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
