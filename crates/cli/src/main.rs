//! `cstf` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cstf_cli::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cstf_cli::help_text());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = cstf_cli::dispatch(&parsed, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
