//! `cstf` binary entry point.

// The counting allocator makes the heap gauges real: without it,
// `cstf_heap_high_water_bytes`, the per-region peaks and run.json's heap
// section all read zero. Overhead is a few relaxed atomics per alloc.
#[global_allocator]
static ALLOC: cstf_telemetry::alloc::CountingAlloc = cstf_telemetry::alloc::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cstf_cli::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cstf_cli::help_text());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = cstf_cli::dispatch(&parsed, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
