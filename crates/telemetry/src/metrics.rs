//! Metrics registry: counters, gauges and fixed-bucket histograms with
//! Prometheus text-format and JSON export.
//!
//! The registry is deliberately small: metric names map to one of three
//! metric kinds, values are `f64`, and histograms use fixed bucket
//! boundaries chosen at registration. Export produces the Prometheus text
//! exposition format (`# HELP` / `# TYPE` / samples, histograms with
//! cumulative `_bucket{le=...}` plus `_sum` and `_count`) and an
//! equivalent JSON object. [`parse_prometheus`] is the minimal parser the
//! artifact round-trip tests (and CI smoke validation) use.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// The default log-spaced nanosecond buckets used for per-launch kernel
/// time histograms (100 ns … 10 s).
pub const NS_BUCKETS: [f64; 9] = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the +Inf overflow bucket at the end.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be increasing");
        Self { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0, total: 0 }
    }

    fn observe(&mut self, v: f64) {
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.total += 1;
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(f64),
    Gauge(f64),
    Histogram(Histogram),
    /// A counter family with labels: one series per rendered label block,
    /// keyed by the canonical (sorted, escaped) block so series order is
    /// stable in every export.
    LabeledCounter(BTreeMap<String, f64>),
    /// A gauge family with labels.
    LabeledGauge(BTreeMap<String, f64>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::LabeledCounter(_) => "counter",
            Metric::Gauge(_) | Metric::LabeledGauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Renders a label set as the canonical Prometheus block (without braces):
/// labels sorted by name, values escaped per the exposition format
/// (`\` -> `\\`, `"` -> `\"`, newline -> `\n`).
///
/// Panics on an invalid label name — label names are compile-time strings
/// in this codebase, so a bad one is a programming error.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<_> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    pairs
        .iter()
        .map(|(k, v)| {
            assert!(
                !k.is_empty()
                    && k.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "invalid label name {k:?}"
            );
            format!("{k}=\"{}\"", escape_label_value(v))
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Default)]
struct Inner {
    metrics: BTreeMap<String, (String, Metric)>,
}

/// A registry of named metrics.
///
/// Metric kinds are fixed at first registration; re-registering a name
/// with a different kind panics (a programming error, not a runtime
/// condition).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name`, creating it at zero on first use.
    pub fn counter_add(&self, name: &str, help: &str, v: f64) {
        let mut inner = self.inner.lock();
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Counter(0.0)));
        match &mut entry.1 {
            Metric::Counter(c) => *c += v.max(0.0),
            other => panic!("{name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, help: &str, v: f64) {
        let mut inner = self.inner.lock();
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(0.0)));
        match &mut entry.1 {
            Metric::Gauge(g) => *g = v,
            other => panic!("{name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Adds `v` to the series of counter family `name` identified by
    /// `labels`, creating family and series at zero on first use. Label
    /// order does not matter — series identity is the sorted label set.
    pub fn counter_add_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let block = render_labels(labels);
        let mut inner = self.inner.lock();
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::LabeledCounter(BTreeMap::new())));
        match &mut entry.1 {
            Metric::LabeledCounter(series) => {
                *series.entry(block).or_insert(0.0) += v.max(0.0);
            }
            other => panic!("{name} is a {}, not a labeled counter", other.type_name()),
        }
    }

    /// Sets the series of gauge family `name` identified by `labels` to
    /// `v`.
    pub fn gauge_set_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let block = render_labels(labels);
        let mut inner = self.inner.lock();
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::LabeledGauge(BTreeMap::new())));
        match &mut entry.1 {
            Metric::LabeledGauge(series) => {
                series.insert(block, v);
            }
            other => panic!("{name} is a {}, not a labeled gauge", other.type_name()),
        }
    }

    /// Records one observation in the fixed-bucket histogram `name`,
    /// creating it with `bounds` on first use.
    pub fn histogram_observe(&self, name: &str, help: &str, bounds: &[f64], v: f64) {
        let mut inner = self.inner.lock();
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Histogram(Histogram::new(bounds))));
        match &mut entry.1 {
            Metric::Histogram(h) => h.observe(v),
            other => panic!("{name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, (help, metric)) in &inner.metrics {
            out.push_str(&format!("# HELP {name} {help}\n"));
            out.push_str(&format!("# TYPE {name} {}\n", metric.type_name()));
            match metric {
                Metric::Counter(v) | Metric::Gauge(v) => {
                    out.push_str(&format!("{name} {}\n", fmt_value(*v)));
                }
                Metric::LabeledCounter(series) | Metric::LabeledGauge(series) => {
                    for (block, v) in series {
                        out.push_str(&format!("{name}{{{block}}} {}\n", fmt_value(*v)));
                    }
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (bound, count) in h.bounds.iter().zip(&h.counts) {
                        cum += count;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            fmt_value(*bound)
                        ));
                    }
                    cum += h.counts.last().copied().unwrap_or(0);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {}\n", fmt_value(h.sum)));
                    out.push_str(&format!("{name}_count {}\n", h.total));
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON object keyed by metric name.
    pub fn to_json(&self) -> serde_json::Value {
        let inner = self.inner.lock();
        let mut map = BTreeMap::new();
        for (name, (help, metric)) in &inner.metrics {
            let help = help.clone();
            let body = match metric {
                Metric::Counter(v) | Metric::Gauge(v) => serde_json::json!({
                    "type": metric.type_name(),
                    "help": help,
                    "value": finite(*v),
                }),
                Metric::LabeledCounter(series) | Metric::LabeledGauge(series) => {
                    let series: BTreeMap<String, f64> =
                        series.iter().map(|(k, v)| (k.clone(), finite(*v))).collect();
                    serde_json::json!({
                        "type": metric.type_name(),
                        "help": help,
                        "series": series,
                    })
                }
                Metric::Histogram(h) => serde_json::json!({
                    "type": "histogram",
                    "help": help,
                    "bounds": h.bounds.iter().map(|&b| finite(b)).collect::<Vec<_>>(),
                    "counts": h.counts.clone(),
                    "sum": finite(h.sum),
                    "count": h.total,
                }),
            };
            map.insert(name.clone(), body);
        }
        serde_json::json!(map)
    }
}

/// Replaces non-finite values with `0.0` so JSON artifacts never contain
/// `null`-ified floats.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

/// One sample parsed from Prometheus text format.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric (or series) name, including `_bucket`/`_sum`/`_count`
    /// suffixes for histogram series.
    pub name: String,
    /// Raw label block without braces (empty when the sample has none).
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Minimal Prometheus text-format parser: returns every sample line and
/// rejects structurally invalid lines. Comment (`#`) and blank lines are
/// skipped; each sample must be `name[{labels}] value`. The series/value
/// split happens *after* the label block, so label values containing
/// whitespace (escaped or raw) parse correctly.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = match line.split_once('{') {
            Some((n, rest)) => {
                // Find the closing brace outside quoted label values
                // (quotes toggle on unescaped `"`).
                let mut in_quotes = false;
                let mut escaped = false;
                let close = rest
                    .char_indices()
                    .find(|&(_, c)| {
                        if escaped {
                            escaped = false;
                            false
                        } else if c == '\\' {
                            escaped = true;
                            false
                        } else if c == '"' {
                            in_quotes = !in_quotes;
                            false
                        } else {
                            c == '}' && !in_quotes
                        }
                    })
                    .map(|(i, _)| i)
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                (n, rest[..close].to_string(), rest[close + 1..].trim())
            }
            None => {
                let (series, value) = line
                    .rsplit_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
                (series, String::new(), value)
            }
        };
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| format!("line {}: bad value {v:?}", lineno + 1))?,
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        out.push(PromSample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.counter_add("launches_total", "kernel launches", 3.0);
        r.counter_add("launches_total", "kernel launches", 2.0);
        r.gauge_set("high_water_bytes", "peak bytes", 10.0);
        r.gauge_set("high_water_bytes", "peak bytes", 7.0);
        let json = r.to_json();
        assert_eq!(json["launches_total"]["value"], 5.0);
        assert_eq!(json["high_water_bytes"]["value"], 7.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let r = Registry::new();
        for v in [0.5, 1.5, 2.5, 100.0] {
            r.histogram_observe("lat", "latency", &[1.0, 2.0, 3.0], v);
        }
        let text = r.to_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"2\"} 2"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_count 4"));
    }

    #[test]
    fn prometheus_output_parses_back() {
        let r = Registry::new();
        r.counter_add("flops_total", "total flops", 1.5e9);
        r.gauge_set("occupancy", "mean occupancy", 0.375);
        r.histogram_observe("t_ns", "launch ns", &NS_BUCKETS, 4.2e3);
        let samples = parse_prometheus(&r.to_prometheus()).expect("round-trip");
        assert!(samples.iter().any(|s| s.name == "flops_total" && s.value == 1.5e9));
        assert!(samples.iter().any(|s| s.name == "occupancy" && s.value == 0.375));
        assert!(samples.iter().any(|s| s.name == "t_ns_bucket" && s.labels.contains("le=")));
        assert!(samples.iter().any(|s| s.name == "t_ns_count" && s.value == 1.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("no_value_here").is_err());
        assert!(parse_prometheus("bad name 1.0 2.0 extra{").is_err());
        assert!(parse_prometheus("unterminated{le=\"1\" 3").is_err());
    }

    #[test]
    fn labeled_series_render_sorted_with_one_family_header() {
        let r = Registry::new();
        // Insert out of label order and out of series order: export must be
        // deterministic regardless.
        r.counter_add_labeled("k_total", "per-kernel", &[("mode", "1"), ("kernel", "b")], 2.0);
        r.counter_add_labeled("k_total", "per-kernel", &[("kernel", "a"), ("mode", "0")], 3.0);
        r.counter_add_labeled("k_total", "per-kernel", &[("mode", "0"), ("kernel", "a")], 4.0);
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE k_total counter").count(), 1);
        let a = text.find("k_total{kernel=\"a\",mode=\"0\"} 7").expect("accumulated series");
        let b = text.find("k_total{kernel=\"b\",mode=\"1\"} 2").expect("second series");
        assert!(a < b, "series in sorted label-block order");
        let json = r.to_json();
        assert_eq!(json["k_total"]["series"]["kernel=\"a\",mode=\"0\""], 7.0);
    }

    #[test]
    fn labeled_gauges_overwrite_per_series() {
        let r = Registry::new();
        r.gauge_set_labeled("g", "", &[("device", "0")], 1.0);
        r.gauge_set_labeled("g", "", &[("device", "0")], 5.0);
        r.gauge_set_labeled("g", "", &[("device", "1")], 2.0);
        let json = r.to_json();
        assert_eq!(json["g"]["series"]["device=\"0\""], 5.0);
        assert_eq!(json["g"]["series"]["device=\"1\""], 2.0);
    }

    #[test]
    fn label_values_are_escaped_and_parse_back() {
        let r = Registry::new();
        r.counter_add_labeled(
            "weird_total",
            "escaping",
            &[("kernel", "back\\slash \"quoted\"\nnewline")],
            1.0,
        );
        let text = r.to_prometheus();
        assert!(
            text.contains(r#"kernel="back\\slash \"quoted\"\nnewline""#),
            "escaped exposition: {text}"
        );
        let samples = parse_prometheus(&text).expect("escaped labels parse");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "weird_total");
        assert_eq!(samples[0].value, 1.0);
        assert!(samples[0].labels.contains("back\\\\slash"));
    }

    #[test]
    fn parser_splits_value_after_label_block_not_at_first_space() {
        let samples =
            parse_prometheus("m{phase=\"UPDATE\",kernel=\"two words\"} 42\n").expect("parses");
        assert_eq!(samples[0].labels, "phase=\"UPDATE\",kernel=\"two words\"");
        assert_eq!(samples[0].value, 42.0);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn bad_label_names_panic() {
        let r = Registry::new();
        r.counter_add_labeled("m", "", &[("0bad name", "v")], 1.0);
    }

    #[test]
    #[should_panic(expected = "not a labeled counter")]
    fn labeled_and_unlabeled_kinds_do_not_mix() {
        let r = Registry::new();
        r.counter_add("m", "", 1.0);
        r.counter_add_labeled("m", "", &[("a", "b")], 1.0);
    }

    #[test]
    fn non_finite_values_are_clamped_in_json() {
        let r = Registry::new();
        r.gauge_set("weird", "a non-finite gauge", f64::INFINITY);
        assert_eq!(r.to_json()["weird"]["value"], 0.0);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge_set("x", "", 1.0);
        r.counter_add("x", "", 1.0);
    }
}
