//! The `run.json` data model: one serializable summary per factorization
//! run, shared by the CLI artifact writer, `cstf report`, and the bench
//! harness (which derives its figure rows from this struct instead of
//! hand-rolled ones).

use std::collections::BTreeMap;

use serde::Serialize;
use serde_json::Value;

use crate::convergence::IterationRecord;

/// Schema version stamped into `run.json` so downstream consumers can
/// detect incompatible layouts.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated totals for one profiled phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseSummary {
    /// Phase label as in the paper's figures (`"GRAM"`, `"MTTKRP"`, …).
    pub phase: String,
    /// Modeled seconds.
    pub modeled_s: f64,
    /// Measured host wall-clock seconds of the kernel bodies.
    pub measured_s: f64,
    /// Kernel launches.
    pub launches: u64,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total logical bytes moved.
    pub bytes: f64,
}

/// One region's heap watermark, as serialized to `run.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RegionPeak {
    /// Region name (`"construction"`, `"factorize"`, `"checkpoint"`).
    pub region: String,
    /// Peak live heap bytes observed while the region was active.
    pub peak_bytes: u64,
}

/// Process heap accounting for one run (counting allocator + regions).
/// Present only when the producing binary installed
/// [`crate::alloc::CountingAlloc`]; absent in older `run.json` files.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HeapSummary {
    /// Process-wide high-water mark of live heap bytes.
    pub high_water_bytes: u64,
    /// Live heap bytes at summary time.
    pub live_bytes: u64,
    /// Total heap allocations since process start.
    pub allocations: u64,
    /// Per-region peak watermarks, in region registration order.
    pub regions: Vec<RegionPeak>,
}

impl HeapSummary {
    /// Snapshots the counting allocator and region watermarks. All-zero
    /// (but still well-formed) in binaries without the allocator.
    pub fn capture() -> Self {
        HeapSummary {
            high_water_bytes: crate::alloc::peak_bytes(),
            live_bytes: crate::alloc::live_bytes(),
            allocations: crate::alloc::allocation_count(),
            regions: crate::alloc::region_peaks()
                .into_iter()
                .map(|(region, peak_bytes)| RegionPeak { region: region.to_string(), peak_bytes })
                .collect(),
        }
    }
}

/// Out-of-core tiling accounting, as serialized to `run.json`. Mirrors
/// the tiled engine's `TilingReport`; present only for actually-tiled
/// runs (`tiles > 1`) so in-core artifacts keep their pre-tiling shape.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TilingSummary {
    /// Tile count K per mode sweep.
    pub tiles: u64,
    /// Host-to-device tile copies performed.
    pub tile_transfers: u64,
    /// Bytes streamed across all tile copies.
    pub streamed_bytes: f64,
    /// Un-overlapped modeled seconds of all tile copies.
    pub transfer_raw_s: f64,
    /// Tile-copy seconds that extended the timeline after
    /// double-buffering.
    pub transfer_exposed_s: f64,
}

impl TilingSummary {
    /// Tile-copy seconds hidden behind the previous tile's compute.
    pub fn hidden_s(&self) -> f64 {
        (self.transfer_raw_s - self.transfer_exposed_s).max(0.0)
    }
}

/// One retired group member, as serialized to `run.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RetiredDevice {
    /// Original group member index (stable across reshards).
    pub device: u64,
    /// Outer iteration at which the member was declared dead.
    pub iteration: u64,
}

/// Elastic sharded-run accounting, as serialized to `run.json`. Mirrors
/// the sharded driver's `ElasticityReport`; present for every `--gpus N`
/// run (all-zero when the group stayed healthy).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ElasticitySummary {
    /// Group size the run started with.
    pub gpus: u64,
    /// Device-loss faults detected.
    pub loss_detections: u64,
    /// Outer-iteration replays before a death was declared.
    pub loss_retries: u64,
    /// Shrink-to-survivors reshards performed.
    pub reshards: u64,
    /// Modeled backoff charged between loss retries.
    pub backoff_s: f64,
    /// Members declared dead and excised, in retirement order.
    pub retired: Vec<RetiredDevice>,
}

impl ElasticitySummary {
    /// Whether the group finished without any loss events.
    pub fn is_clean(&self) -> bool {
        self.loss_detections == 0 && self.reshards == 0 && self.retired.is_empty()
    }
}

/// One factorization run, as serialized to `run.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunSummary {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing system (a preset name or `"cstf-cli"`).
    pub system: String,
    /// Simulated device name.
    pub device: String,
    /// Tensor mode dimensions.
    pub shape: Vec<usize>,
    /// Stored nonzeros.
    pub nnz: u64,
    /// Factorization rank.
    pub rank: u32,
    /// Outer iterations executed.
    pub iterations: u32,
    /// Whether the fit-tolerance stop fired.
    pub converged: bool,
    /// Fit after each outer iteration (empty when fit tracking is off).
    pub fits: Vec<f64>,
    /// Final fit, when tracked.
    pub final_fit: Option<f64>,
    /// Host wall-clock seconds of the whole run.
    pub wall_s: f64,
    /// Total modeled seconds (all phases, including transfers).
    pub modeled_s: f64,
    /// Total measured kernel-body seconds.
    pub measured_s: f64,
    /// One-time transfer cost in modeled seconds.
    pub transfer_s: f64,
    /// Per-phase totals in display order.
    pub phases: Vec<PhaseSummary>,
    /// Heap accounting (omitted when the producer has no counting
    /// allocator; optional for backward compatibility with older files).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub heap: Option<HeapSummary>,
    /// Out-of-core tiling accounting (tiled runs only; optional for
    /// backward compatibility with older files).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub tiling: Option<TilingSummary>,
    /// Elastic sharded-run accounting (`--gpus N` runs only; optional for
    /// backward compatibility with older files).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub elasticity: Option<ElasticitySummary>,
}

impl RunSummary {
    /// Modeled seconds of one phase by label (0 when absent).
    pub fn phase_modeled_s(&self, label: &str) -> f64 {
        self.phases.iter().find(|p| p.phase == label).map_or(0.0, |p| p.modeled_s)
    }

    /// Measured kernel-body seconds of one phase by label (0 when absent).
    pub fn phase_measured_s(&self, label: &str) -> f64 {
        self.phases.iter().find(|p| p.phase == label).map_or(0.0, |p| p.measured_s)
    }

    /// Modeled compute seconds per outer iteration: the four compute
    /// phases, excluding one-time transfers (the paper's Figs. 5/6
    /// metric).
    pub fn per_iter_modeled_s(&self) -> f64 {
        let compute: f64 =
            ["GRAM", "MTTKRP", "UPDATE", "NORMALIZE"].iter().map(|l| self.phase_modeled_s(l)).sum();
        compute / (self.iterations.max(1) as f64)
    }

    /// Serializes as pretty JSON (the `run.json` artifact body).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunSummary serializes")
    }

    /// Parses a `run.json` body.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("run.json: {e}"))?;
        let parsed = Self::from_value(&v).map_err(|e| format!("run.json: {e}"))?;
        if parsed.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "run.json: schema version {} unsupported (expected {SCHEMA_VERSION})",
                parsed.schema_version
            ));
        }
        Ok(parsed)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let phases = v
            .get("phases")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing phases array".to_string())?
            .iter()
            .map(|p| {
                Ok(PhaseSummary {
                    phase: get_str(p, "phase")?,
                    modeled_s: get_f64(p, "modeled_s")?,
                    measured_s: get_f64(p, "measured_s")?,
                    launches: get_u64(p, "launches")?,
                    flops: get_f64(p, "flops")?,
                    bytes: get_f64(p, "bytes")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunSummary {
            schema_version: get_u64(v, "schema_version")? as u32,
            system: get_str(v, "system")?,
            device: get_str(v, "device")?,
            shape: v
                .get("shape")
                .and_then(Value::as_array)
                .ok_or_else(|| "missing shape array".to_string())?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "non-integer shape entry".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?,
            nnz: get_u64(v, "nnz")?,
            rank: get_u64(v, "rank")? as u32,
            iterations: get_u64(v, "iterations")? as u32,
            converged: v
                .get("converged")
                .and_then(Value::as_bool)
                .ok_or_else(|| "missing boolean field \"converged\"".to_string())?,
            fits: v
                .get("fits")
                .and_then(Value::as_array)
                .ok_or_else(|| "missing fits array".to_string())?
                .iter()
                .map(|f| f.as_f64().ok_or_else(|| "non-numeric fit".to_string()))
                .collect::<Result<Vec<_>, String>>()?,
            final_fit: v.get("final_fit").and_then(Value::as_f64),
            wall_s: get_f64(v, "wall_s")?,
            modeled_s: get_f64(v, "modeled_s")?,
            measured_s: get_f64(v, "measured_s")?,
            transfer_s: get_f64(v, "transfer_s")?,
            phases,
            heap: match v.get("heap") {
                None | Some(Value::Null) => None,
                Some(h) => Some(HeapSummary {
                    high_water_bytes: get_u64(h, "high_water_bytes")?,
                    live_bytes: get_u64(h, "live_bytes")?,
                    allocations: get_u64(h, "allocations")?,
                    regions: h
                        .get("regions")
                        .and_then(Value::as_array)
                        .ok_or_else(|| "missing heap regions array".to_string())?
                        .iter()
                        .map(|r| {
                            Ok(RegionPeak {
                                region: get_str(r, "region")?,
                                peak_bytes: get_u64(r, "peak_bytes")?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                }),
            },
            tiling: match v.get("tiling") {
                None | Some(Value::Null) => None,
                Some(t) => Some(TilingSummary {
                    tiles: get_u64(t, "tiles")?,
                    tile_transfers: get_u64(t, "tile_transfers")?,
                    streamed_bytes: get_f64(t, "streamed_bytes")?,
                    transfer_raw_s: get_f64(t, "transfer_raw_s")?,
                    transfer_exposed_s: get_f64(t, "transfer_exposed_s")?,
                }),
            },
            elasticity: match v.get("elasticity") {
                None | Some(Value::Null) => None,
                Some(e) => Some(ElasticitySummary {
                    gpus: get_u64(e, "gpus")?,
                    loss_detections: get_u64(e, "loss_detections")?,
                    loss_retries: get_u64(e, "loss_retries")?,
                    reshards: get_u64(e, "reshards")?,
                    backoff_s: get_f64(e, "backoff_s")?,
                    retired: e
                        .get("retired")
                        .and_then(Value::as_array)
                        .ok_or_else(|| "missing retired array".to_string())?
                        .iter()
                        .map(|r| {
                            Ok(RetiredDevice {
                                device: get_u64(r, "device")?,
                                iteration: get_u64(r, "iteration")?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                }),
            },
        })
    }

    /// The regression-friendly single-line JSON `cstf report --json`
    /// emits: one flat object, stable keys, no nesting below `phases`.
    pub fn report_json_line(&self) -> String {
        let phases: BTreeMap<String, f64> =
            self.phases.iter().map(|p| (p.phase.to_lowercase(), p.modeled_s)).collect();
        let mut line = serde_json::json!({
            "schema_version": self.schema_version,
            "system": self.system.clone(),
            "device": self.device.clone(),
            "nnz": self.nnz,
            "rank": self.rank,
            "iterations": self.iterations,
            "converged": self.converged,
            "final_fit": self.final_fit,
            "wall_s": self.wall_s,
            "modeled_s": self.modeled_s,
            "measured_s": self.measured_s,
            "per_iter_modeled_s": self.per_iter_modeled_s(),
            "phases": phases,
        });
        if let Some(heap) = &self.heap {
            line["heap_high_water_bytes"] = heap.high_water_bytes.into();
            let regions: BTreeMap<String, u64> =
                heap.regions.iter().map(|r| (r.region.clone(), r.peak_bytes)).collect();
            line["heap_region_peak_bytes"] = serde_json::json!(regions);
        }
        if let Some(t) = &self.tiling {
            line["tiles"] = t.tiles.into();
            line["tile_transfers"] = t.tile_transfers.into();
            line["tile_streamed_bytes"] = serde_json::json!(t.streamed_bytes);
            line["tile_exposed_s"] = serde_json::json!(t.transfer_exposed_s);
            line["tile_hidden_s"] = serde_json::json!(t.hidden_s());
        }
        if let Some(e) = &self.elasticity {
            line["gpus"] = e.gpus.into();
            line["loss_detections"] = e.loss_detections.into();
            line["reshards"] = e.reshards.into();
            line["devices_retired"] = (e.retired.len() as u64).into();
        }
        serde_json::to_string(&line).expect("report line serializes")
    }

    /// Renders the human-readable `cstf report` view: run header, phase
    /// breakdown table, and a per-iteration convergence table when
    /// `iterations` records are available.
    pub fn render_report(&self, iterations: &[IterationRecord]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {} on {} | tensor {:?} nnz {} rank {}\n",
            self.system, self.device, self.shape, self.nnz, self.rank
        ));
        out.push_str(&format!(
            "{} outer iterations, converged: {}, final fit: {}\n",
            self.iterations,
            self.converged,
            self.final_fit.map_or("n/a".to_string(), |f| format!("{f:.6}")),
        ));
        out.push_str(&format!(
            "wall {:.3}s | modeled {:.3e}s ({:.3e}s/iter) | measured kernel bodies {:.3e}s\n\n",
            self.wall_s,
            self.modeled_s,
            self.per_iter_modeled_s(),
            self.measured_s,
        ));

        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>9} {:>12} {:>12}\n",
            "phase", "modeled s", "measured s", "launches", "flops", "bytes"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<10} {:>12.3e} {:>12.3e} {:>9} {:>12.3e} {:>12.3e}\n",
                p.phase, p.modeled_s, p.measured_s, p.launches, p.flops, p.bytes
            ));
        }

        if let Some(t) = &self.tiling {
            out.push_str(&format!(
                "\nout-of-core: {} tiles/mode, {} tile copies, {:.3e} B streamed\n  \
                 {:.3e}s hidden behind compute, {:.3e}s exposed on the timeline\n",
                t.tiles,
                t.tile_transfers,
                t.streamed_bytes,
                t.hidden_s(),
                t.transfer_exposed_s
            ));
        }

        if let Some(e) = &self.elasticity {
            if e.is_clean() {
                out.push_str(&format!(
                    "\nelasticity: {} devices, clean run (no loss events)\n",
                    e.gpus
                ));
            } else {
                let retired = if e.retired.is_empty() {
                    "none".to_string()
                } else {
                    e.retired
                        .iter()
                        .map(|r| format!("gpu{}@it{}", r.device, r.iteration))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                out.push_str(&format!(
                    "\nelasticity: {} devices, {} loss detections, {} retries \
                     ({:.3e}s backoff), {} reshards; retired: {retired}\n",
                    e.gpus, e.loss_detections, e.loss_retries, e.backoff_s, e.reshards
                ));
            }
        }

        if let Some(heap) = &self.heap {
            out.push_str(&format!(
                "\nheap: high water {} B, live {} B, {} allocations\n",
                heap.high_water_bytes, heap.live_bytes, heap.allocations
            ));
            for r in &heap.regions {
                out.push_str(&format!("  region {:<14} peak {} B\n", r.region, r.peak_bytes));
            }
        }

        if !iterations.is_empty() {
            out.push_str(&format!(
                "\n{:>5} {:>10} {:>10} {:>9} {:>11} {:>11}\n",
                "iter", "fit", "rel err", "inner it", "primal", "dual"
            ));
            for it in iterations {
                let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3e}"));
                let inner: u32 = it.modes.iter().map(|m| m.inner_iters).sum();
                // Worst (largest) residual across this iteration's modes is
                // the conservative convergence indicator.
                let worst = |f: fn(&crate::ModeUpdateRecord) -> Option<f64>| {
                    it.modes
                        .iter()
                        .filter_map(f)
                        .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
                };
                out.push_str(&format!(
                    "{:>5} {:>10} {:>10} {:>9} {:>11} {:>11}\n",
                    it.iter,
                    it.fit.map_or("-".to_string(), |f| format!("{f:.6}")),
                    fmt_opt(it.rel_error),
                    inner,
                    fmt_opt(worst(|m| m.primal_residual)),
                    fmt_opt(worst(|m| m.dual_residual)),
                ));
            }
        }
        out
    }
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing integer field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        RunSummary {
            schema_version: SCHEMA_VERSION,
            system: "cstf-cli".into(),
            device: "NVIDIA H100 (PCIe 80GB)".into(),
            shape: vec![30, 20, 10],
            nnz: 5000,
            rank: 8,
            iterations: 4,
            converged: false,
            fits: vec![0.5, 0.6, 0.65, 0.66],
            final_fit: Some(0.66),
            wall_s: 0.12,
            modeled_s: 3.4e-3,
            measured_s: 2.2e-3,
            transfer_s: 1e-4,
            phases: vec![
                PhaseSummary {
                    phase: "MTTKRP".into(),
                    modeled_s: 2e-3,
                    measured_s: 1e-3,
                    launches: 12,
                    flops: 1e9,
                    bytes: 2e9,
                },
                PhaseSummary {
                    phase: "UPDATE".into(),
                    modeled_s: 1e-3,
                    measured_s: 1e-3,
                    launches: 48,
                    flops: 5e8,
                    bytes: 1e9,
                },
            ],
            heap: None,
            tiling: None,
            elasticity: None,
        }
    }

    fn sample_with_heap() -> RunSummary {
        let mut s = sample();
        s.heap = Some(HeapSummary {
            high_water_bytes: 9_000_000,
            live_bytes: 1_200_000,
            allocations: 4321,
            regions: vec![
                RegionPeak { region: "construction".into(), peak_bytes: 7_000_000 },
                RegionPeak { region: "factorize".into(), peak_bytes: 9_000_000 },
            ],
        });
        s
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let back = RunSummary::from_json(&s.to_json_pretty()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn heap_section_round_trips_and_stays_optional() {
        let s = sample_with_heap();
        let json = s.to_json_pretty();
        let back = RunSummary::from_json(&json).unwrap();
        assert_eq!(back, s);
        // Heap-less files (older producers, or a serializer that emits
        // `"heap": null`) still parse back to a heap-less summary.
        assert_eq!(RunSummary::from_json(&sample().to_json_pretty()).unwrap().heap, None);
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v["heap"] = serde_json::Value::Null;
        let back = RunSummary::from_json(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back.heap, None, "explicit null heap parses as absent");
    }

    #[test]
    fn report_line_and_render_surface_heap() {
        let s = sample_with_heap();
        let line: serde_json::Value = serde_json::from_str(&s.report_json_line()).unwrap();
        assert_eq!(line["heap_high_water_bytes"], 9_000_000);
        assert_eq!(line["heap_region_peak_bytes"]["factorize"], 9_000_000);
        let text = s.render_report(&[]);
        assert!(text.contains("high water 9000000 B"), "{text}");
        assert!(text.contains("region construction"), "{text}");
        // A heap-less summary renders no heap section and no key.
        let plain = sample();
        assert!(!plain.render_report(&[]).contains("heap:"));
        assert!(!plain.report_json_line().contains("heap_high_water_bytes"));
    }

    fn sample_with_tiling_and_elasticity() -> RunSummary {
        let mut s = sample();
        s.tiling = Some(TilingSummary {
            tiles: 3,
            tile_transfers: 36,
            streamed_bytes: 4.5e6,
            transfer_raw_s: 3e-4,
            transfer_exposed_s: 1e-4,
        });
        s.elasticity = Some(ElasticitySummary {
            gpus: 4,
            loss_detections: 1,
            loss_retries: 2,
            reshards: 1,
            backoff_s: 5e-3,
            retired: vec![RetiredDevice { device: 2, iteration: 3 }],
        });
        s
    }

    #[test]
    fn tiling_and_elasticity_round_trip_and_stay_optional() {
        let s = sample_with_tiling_and_elasticity();
        let back = RunSummary::from_json(&s.to_json_pretty()).unwrap();
        assert_eq!(back, s);
        // Files from older producers (or explicit nulls) parse as absent.
        let plain = RunSummary::from_json(&sample().to_json_pretty()).unwrap();
        assert_eq!((plain.tiling, plain.elasticity), (None, None));
    }

    #[test]
    fn report_renders_tiling_and_elasticity_sections() {
        let s = sample_with_tiling_and_elasticity();
        let text = s.render_report(&[]);
        assert!(text.contains("out-of-core: 3 tiles/mode, 36 tile copies"), "{text}");
        assert!(text.contains("exposed on the timeline"), "{text}");
        assert!(text.contains("elasticity: 4 devices, 1 loss detections"), "{text}");
        assert!(text.contains("retired: gpu2@it3"), "{text}");
        let line: serde_json::Value = serde_json::from_str(&s.report_json_line()).unwrap();
        assert_eq!(line["tiles"], 3);
        assert_eq!(line["tile_hidden_s"], s.tiling.as_ref().unwrap().hidden_s());
        assert_eq!(line["reshards"], 1);
        assert_eq!(line["devices_retired"], 1);
        // A clean group renders the short form; a plain run renders neither.
        let mut clean = s.clone();
        clean.elasticity.as_mut().unwrap().loss_detections = 0;
        clean.elasticity.as_mut().unwrap().loss_retries = 0;
        clean.elasticity.as_mut().unwrap().reshards = 0;
        clean.elasticity.as_mut().unwrap().retired.clear();
        assert!(clean.render_report(&[]).contains("clean run (no loss events)"));
        let plain = sample().render_report(&[]);
        assert!(!plain.contains("out-of-core:") && !plain.contains("elasticity:"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut s = sample();
        s.schema_version = 999;
        let err = RunSummary::from_json(&s.to_json_pretty()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn per_iter_excludes_transfers() {
        let s = sample();
        assert!((s.per_iter_modeled_s() - 3e-3 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn report_line_is_single_line_valid_json() {
        let line = sample().report_json_line();
        assert_eq!(line.lines().count(), 1);
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["rank"], 8);
        assert_eq!(v["phases"]["mttkrp"], 2e-3);
    }

    #[test]
    fn rendered_report_contains_phases_and_iterations() {
        let iterations = vec![IterationRecord {
            iter: 0,
            fit: Some(0.5),
            rel_error: Some(0.5),
            modes: vec![crate::ModeUpdateRecord {
                iter: 0,
                mode: 0,
                inner_iters: 10,
                primal_residual: Some(1e-4),
                dual_residual: Some(2e-4),
                rho: Some(0.3),
            }],
        }];
        let text = sample().render_report(&iterations);
        assert!(text.contains("MTTKRP"));
        assert!(text.contains("0.500000"));
        assert!(text.contains("1.000e-4") || text.contains("1e-4") || text.contains("1.000e-04"));
    }
}
