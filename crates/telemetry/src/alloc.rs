//! A counting global allocator.
//!
//! Wraps [`std::alloc::System`] and keeps three process-wide tallies:
//! total allocation count (the `cstf_allocations_total` counter), live
//! heap bytes, and the high-water mark of live bytes (the
//! `cstf_heap_high_water_bytes` gauge). Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cstf_telemetry::alloc::CountingAlloc = cstf_telemetry::alloc::CountingAlloc;
//! ```
//!
//! The counters are meaningful (non-zero) only in binaries that install
//! the allocator; elsewhere the readers simply return zero.

// GlobalAlloc is an unsafe trait; this module is the one sanctioned
// exception to the crate-wide `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Maximum number of distinct [`HeapRegion`] names per process. Regions
/// beyond the budget are silently untracked (their guard is inert); the
/// fixed array keeps the allocator path lock-free and allocation-free.
pub const MAX_REGIONS: usize = 8;

/// Per-region high-water marks of *global* live bytes observed while the
/// region was active (scoped watermark semantics).
static REGION_PEAKS: [AtomicU64; MAX_REGIONS] = [const { AtomicU64::new(0) }; MAX_REGIONS];
/// Per-region nesting depth (a region can be re-entered).
static REGION_DEPTH: [AtomicU64; MAX_REGIONS] = [const { AtomicU64::new(0) }; MAX_REGIONS];
/// Bitmask of region slots with depth > 0. The allocator checks this one
/// atomic: when no region is active, tracking costs a single relaxed load.
static ACTIVE_MASK: AtomicU64 = AtomicU64::new(0);
/// Slot-name registry. Locked only by [`HeapRegion::enter`] and the
/// readers — never by the allocator hooks, so the allocator cannot
/// deadlock against it. A fixed array: registration allocates nothing.
static REGION_NAMES: Mutex<[Option<&'static str>; MAX_REGIONS]> = Mutex::new([None; MAX_REGIONS]);

/// A [`GlobalAlloc`] that forwards to [`System`] while counting
/// allocations and tracking live/peak heap bytes.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let mask = ACTIVE_MASK.load(Ordering::Relaxed);
    if mask != 0 {
        // Purely atomic: no locks, no allocation, a couple of fetch_max
        // calls only while a region is open.
        let mut bits = mask;
        while bits != 0 {
            let slot = bits.trailing_zeros() as usize;
            REGION_PEAKS[slot].fetch_max(live, Ordering::Relaxed);
            bits &= bits - 1;
        }
    }
}

fn on_dealloc(size: usize) {
    // Saturate rather than wrap: frees of memory allocated before the
    // allocator was installed must not underflow the gauge.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size as u64))
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // Explicit override: the default impl would route through
        // `self.alloc`, but forwarding to the system's zeroed path keeps
        // calloc's fresh-page optimization while still tallying.
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// An RAII scoped heap-watermark region.
///
/// While the guard is alive, every allocation folds the *global* live-byte
/// count into the region's peak (watermark semantics: the region owns the
/// peak, not just its own allocations — "which phase was live when the
/// process hit its high-water mark" is exactly the question phase
/// attribution answers). Regions nest and re-enter freely; re-entry keeps
/// accumulating into the same named slot. Entering is allocation-free
/// (fixed slot table) and the allocator hot path never takes a lock, so
/// tracking adds zero steady-state allocations (pinned by
/// `tests/zero_alloc.rs`).
#[must_use = "a heap region tracks the watermark until it is dropped"]
pub struct HeapRegion {
    slot: Option<usize>,
}

impl HeapRegion {
    /// Opens a named region. `name` must be a `'static` string (region
    /// names are a small fixed vocabulary: `"construction"`,
    /// `"factorize"`, `"checkpoint"`). Returns an inert guard when the
    /// [`MAX_REGIONS`] slot budget is exhausted.
    pub fn enter(name: &'static str) -> HeapRegion {
        let slot = {
            let mut names = REGION_NAMES.lock().unwrap_or_else(|e| e.into_inner());
            match names.iter().position(|n| *n == Some(name)) {
                Some(i) => Some(i),
                None => names.iter().position(Option::is_none).inspect(|&i| {
                    names[i] = Some(name);
                }),
            }
        };
        if let Some(i) = slot {
            if REGION_DEPTH[i].fetch_add(1, Ordering::Relaxed) == 0 {
                ACTIVE_MASK.fetch_or(1 << i, Ordering::Relaxed);
            }
            // The watermark starts at the live bytes on entry, so a region
            // that never allocates still reports what was resident.
            REGION_PEAKS[i].fetch_max(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        HeapRegion { slot }
    }
}

impl Drop for HeapRegion {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            if REGION_DEPTH[i].fetch_sub(1, Ordering::Relaxed) == 1 {
                ACTIVE_MASK.fetch_and(!(1 << i), Ordering::Relaxed);
            }
        }
    }
}

/// Every registered region with its peak live-byte watermark, in
/// registration order. Empty until the first [`HeapRegion::enter`].
pub fn region_peaks() -> Vec<(&'static str, u64)> {
    let names = REGION_NAMES.lock().unwrap_or_else(|e| e.into_inner());
    names
        .iter()
        .enumerate()
        .filter_map(|(i, n)| n.map(|name| (name, REGION_PEAKS[i].load(Ordering::Relaxed))))
        .collect()
}

/// Peak live-byte watermark of one region by name (0 if never entered).
pub fn region_peak(name: &str) -> u64 {
    region_peaks().iter().find(|(n, _)| *n == name).map_or(0, |(_, p)| *p)
}

/// Resets every region watermark to zero (names and nesting stay). Test
/// hook: lets one process measure several runs independently.
pub fn reset_region_peaks() {
    for p in &REGION_PEAKS {
        p.store(0, Ordering::Relaxed);
    }
}

/// Total heap allocations since process start (includes reallocs).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Currently live heap bytes.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installing the allocator in the unit-test binary exercises the real
    // alloc/dealloc/realloc paths under every other test in this crate.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn allocations_are_counted_and_peak_tracks_live() {
        let before = allocation_count();
        let v: Vec<u8> = Vec::with_capacity(4096);
        assert!(allocation_count() > before, "Vec::with_capacity must count");
        assert!(peak_bytes() >= 4096);
        assert!(peak_bytes() >= live_bytes() || live_bytes() == 0);
        drop(v);
    }

    #[test]
    fn realloc_keeps_counts_consistent() {
        let before = allocation_count();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        for i in 0..10_000u32 {
            v.push((i % 251) as u8);
        }
        assert!(allocation_count() > before + 1, "growth reallocs must count");
        assert!(peak_bytes() >= 10_000);
    }

    #[test]
    fn realloc_moves_live_bytes_not_just_counts() {
        let mut v: Vec<u8> = Vec::with_capacity(1024);
        let live_small = live_bytes();
        v.reserve_exact(64 * 1024); // forces a realloc to >= 64 KiB
        let live_big = live_bytes();
        assert!(
            live_big >= live_small + 63 * 1024,
            "realloc must retire the old size and add the new: {live_small} -> {live_big}"
        );
        drop(v);
        assert!(live_bytes() <= live_small, "dealloc after realloc must retire the new size");
    }

    #[test]
    fn alloc_zeroed_is_tallied() {
        let count_before = allocation_count();
        let live_before = live_bytes();
        // `vec![0u8; n]` lowers to alloc_zeroed.
        let v = vec![0u8; 32 * 1024];
        assert!(allocation_count() > count_before, "alloc_zeroed must count an allocation");
        assert!(live_bytes() >= live_before + 32 * 1024, "alloc_zeroed must add to live bytes");
        assert!(peak_bytes() >= live_bytes() || live_bytes() == 0);
        drop(v);
        assert!(live_bytes() <= live_before + 1024, "freeing the zeroed block must retire it");
    }

    #[test]
    fn heap_region_watermarks_allocations_inside_it() {
        reset_region_peaks();
        let outside = live_bytes();
        {
            let _r = HeapRegion::enter("alloc-test-region");
            let v = vec![1u8; 128 * 1024];
            assert!(region_peak("alloc-test-region") >= outside + 128 * 1024, "{v:?}.len()");
        }
        let peak = region_peak("alloc-test-region");
        let _big_after = vec![2u8; 512 * 1024];
        assert_eq!(
            region_peak("alloc-test-region"),
            peak,
            "allocations after the region closed must not move its watermark"
        );
    }

    #[test]
    fn heap_region_without_allocations_reports_resident_bytes() {
        reset_region_peaks();
        let resident = vec![3u8; 64 * 1024];
        {
            let _r = HeapRegion::enter("alloc-idle-region");
        }
        assert!(
            region_peak("alloc-idle-region") >= resident.len() as u64,
            "entry watermark must capture what was already live"
        );
    }

    #[test]
    fn heap_regions_nest_and_reenter() {
        reset_region_peaks();
        {
            let _a = HeapRegion::enter("alloc-outer");
            {
                let _b = HeapRegion::enter("alloc-inner");
                let _v = vec![4u8; 96 * 1024];
            }
            // Re-entry accumulates into the same slot.
            let _b2 = HeapRegion::enter("alloc-inner");
        }
        assert!(region_peak("alloc-inner") >= 96 * 1024);
        assert!(
            region_peak("alloc-outer") >= region_peak("alloc-inner"),
            "outer was active whenever inner was"
        );
        let names: Vec<&str> = region_peaks().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names.iter().filter(|n| **n == "alloc-inner").count(),
            1,
            "re-entry must not register a second slot"
        );
    }
}
