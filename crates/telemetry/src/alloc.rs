//! A counting global allocator.
//!
//! Wraps [`std::alloc::System`] and keeps three process-wide tallies:
//! total allocation count (the `cstf_allocations_total` counter), live
//! heap bytes, and the high-water mark of live bytes (the
//! `cstf_heap_high_water_bytes` gauge). Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cstf_telemetry::alloc::CountingAlloc = cstf_telemetry::alloc::CountingAlloc;
//! ```
//!
//! The counters are meaningful (non-zero) only in binaries that install
//! the allocator; elsewhere the readers simply return zero.

// GlobalAlloc is an unsafe trait; this module is the one sanctioned
// exception to the crate-wide `deny(unsafe_code)`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] while counting
/// allocations and tracking live/peak heap bytes.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    // Saturate rather than wrap: frees of memory allocated before the
    // allocator was installed must not underflow the gauge.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size as u64))
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Total heap allocations since process start (includes reallocs).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Currently live heap bytes.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Installing the allocator in the unit-test binary exercises the real
    // alloc/dealloc/realloc paths under every other test in this crate.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn allocations_are_counted_and_peak_tracks_live() {
        let before = allocation_count();
        let v: Vec<u8> = Vec::with_capacity(4096);
        assert!(allocation_count() > before, "Vec::with_capacity must count");
        assert!(peak_bytes() >= 4096);
        assert!(peak_bytes() >= live_bytes() || live_bytes() == 0);
        drop(v);
    }

    #[test]
    fn realloc_keeps_counts_consistent() {
        let before = allocation_count();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        for i in 0..10_000u32 {
            v.push((i % 251) as u8);
        }
        assert!(allocation_count() > before + 1, "growth reallocs must count");
        assert!(peak_bytes() >= 10_000);
    }
}
