//! # cstf-telemetry
//!
//! The always-on observability layer for cSTF-rs (DESIGN.md §Observability).
//!
//! The paper's whole argument (§3.3, Figs. 1, 3–8) is an *attribution*
//! argument — which phase dominates, how many bytes operation fusion
//! removes, what pre-inversion does to the UPDATE roofline. This crate
//! turns that attribution from per-figure one-offs into one shared data
//! model with four pieces:
//!
//! * [`spans`] — a lightweight structured span system
//!   ([`Span::enter`](spans::Span::enter)) with nesting, wall-clock
//!   attribution and a per-thread buffer, disabled by default and costing
//!   one relaxed atomic load when off;
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms, exportable as Prometheus text format and JSON;
//! * [`convergence`] — per-outer-iteration records of fit, relative error,
//!   ADMM primal/dual residuals, inner-iteration counts and rho, collected
//!   allocation-free in the solver hot loop and emitted as JSONL;
//! * [`summary`] — the `run.json` data model ([`RunSummary`]) that the CLI
//!   artifacts, the `cstf report` renderer and the bench harness all share.
//!
//! [`alloc`] additionally provides the counting global allocator used by
//! the zero-allocation tests and the `cstf_allocations_total` metric.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc;
pub mod convergence;
pub mod footprint;
pub mod metrics;
pub mod spans;
pub mod summary;

pub use alloc::HeapRegion;
pub use convergence::{ConvergenceLog, IterationRecord, ModeUpdateRecord};
pub use footprint::{nested_vec_heap_bytes, vec_heap_bytes, Footprint, MemoryFootprint};
pub use metrics::{parse_prometheus, PromSample, Registry};
pub use spans::{set_spans_enabled, spans_enabled, Span, SpanRecord};
pub use summary::{
    ElasticitySummary, HeapSummary, PhaseSummary, RegionPeak, RetiredDevice, RunSummary,
    TilingSummary,
};
