//! Structured spans with nesting and per-thread buffers.
//!
//! A [`Span`] is an RAII guard around a region of host work: entering
//! stamps a monotonic start time and a nesting depth, dropping stamps the
//! duration and appends one [`SpanRecord`] to the *current thread's*
//! buffer. Buffers are thread-owned — the recording path never contends
//! with other threads (the per-buffer lock is only ever taken by its own
//! thread during recording and by [`drain`] at collection time) — so Rayon
//! worker threads inside kernels record for free.
//!
//! Recording is **disabled by default**: when off, [`Span::enter`] is a
//! single relaxed atomic load and records nothing, which is what keeps the
//! always-on instrumentation inside the <2% overhead budget (enforced by
//! `tests/telemetry_overhead.rs`).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Span name (e.g. `"mttkrp"`, `"outer_iteration"`).
    pub name: &'static str,
    /// Optional mode index for per-mode work (`None` for modeless spans).
    pub mode: Option<u32>,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Recording thread's telemetry id (dense, assigned at first record).
    pub thread: u64,
    /// Start, in nanoseconds since the process-wide span epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End of the span, in nanoseconds since the span epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// True when `child` lies strictly inside this span's interval on the
    /// same thread, one nesting level down.
    pub fn encloses(&self, child: &SpanRecord) -> bool {
        self.thread == child.thread
            && child.depth == self.depth + 1
            && self.start_ns <= child.start_ns
            && child.end_ns() <= self.end_ns()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One thread's shared record buffer, also held by the global registry.
type SharedBuffer = Arc<Mutex<Vec<SpanRecord>>>;

/// Registry of every thread's buffer, so [`drain`] can collect records
/// produced on Rayon workers as well as the caller's thread.
fn registry() -> &'static Mutex<Vec<SharedBuffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadBuffer {
    id: u64,
    depth: Cell<u32>,
    records: SharedBuffer,
}

thread_local! {
    static BUFFER: ThreadBuffer = {
        let records = Arc::new(Mutex::new(Vec::new()));
        registry().lock().push(Arc::clone(&records));
        ThreadBuffer {
            id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            depth: Cell::new(0),
            records,
        }
    };
}

/// Turns span recording on or off process-wide.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether span recording is currently enabled.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Takes every recorded span from every thread's buffer, sorted by
/// `(thread, start_ns)`, leaving the buffers empty.
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for buf in registry().lock().iter() {
        out.append(&mut buf.lock());
    }
    out.sort_by_key(|r| (r.thread, r.start_ns, r.depth));
    out
}

/// Discards every recorded span without returning them.
pub fn clear() {
    let _ = drain();
}

/// An RAII span guard: created by [`Span::enter`], records one
/// [`SpanRecord`] when dropped. A disabled span (`None` payload) is free.
#[must_use = "a span measures the region until it is dropped"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    mode: Option<u32>,
    depth: u32,
    start: Instant,
    start_ns: u64,
}

impl Span {
    /// Enters a named span on the current thread. When recording is
    /// disabled this is one atomic load and the guard does nothing.
    pub fn enter(name: &'static str) -> Span {
        Self::open(name, None)
    }

    /// Enters a named span attributed to a tensor mode.
    pub fn enter_mode(name: &'static str, mode: usize) -> Span {
        Self::open(name, Some(mode as u32))
    }

    fn open(name: &'static str, mode: Option<u32>) -> Span {
        if !spans_enabled() {
            return Span(None);
        }
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let depth = BUFFER.with(|b| {
            let d = b.depth.get();
            b.depth.set(d + 1);
            d
        });
        Span(Some(ActiveSpan { name, mode, depth, start, start_ns }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let dur_ns = active.start.elapsed().as_nanos() as u64;
            BUFFER.with(|b| {
                b.depth.set(b.depth.get().saturating_sub(1));
                b.records.lock().push(SpanRecord {
                    name: active.name,
                    mode: active.mode,
                    depth: active.depth,
                    thread: b.id,
                    start_ns: active.start_ns,
                    dur_ns,
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes span tests within this binary: the enable flag and the
    /// buffers are process-wide.
    fn with_spans<R>(f: impl FnOnce() -> R) -> R {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        set_spans_enabled(true);
        let out = f();
        set_spans_enabled(false);
        clear();
        out
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_spans_enabled(false);
        {
            let _s = Span::enter("noop");
        }
        assert!(!spans_enabled());
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let records = with_spans(|| {
            {
                let _outer = Span::enter("outer");
                {
                    let _inner = Span::enter_mode("inner", 2);
                }
            }
            drain()
        });
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.mode, Some(2));
        assert!(outer.encloses(inner), "outer must contain inner");
        assert!(inner.dur_ns <= outer.dur_ns, "child time must not exceed parent time");
    }

    #[test]
    fn sibling_spans_share_depth() {
        let records = with_spans(|| {
            {
                let _a = Span::enter("a");
            }
            {
                let _b = Span::enter("b");
            }
            drain()
        });
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.depth == 0));
    }

    #[test]
    fn drain_empties_the_buffers() {
        let (first, second) = with_spans(|| {
            {
                let _s = Span::enter("once");
            }
            (drain().len(), drain().len())
        });
        assert_eq!(first, 1);
        assert_eq!(second, 0);
    }

    #[test]
    fn spans_from_worker_threads_are_collected() {
        let records = with_spans(|| {
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        let _w = Span::enter("worker");
                    });
                }
            });
            drain()
        });
        assert_eq!(records.iter().filter(|r| r.name == "worker").count(), 3);
        let threads: std::collections::HashSet<u64> = records.iter().map(|r| r.thread).collect();
        assert_eq!(threads.len(), 3, "each worker records under its own thread id");
    }
}
