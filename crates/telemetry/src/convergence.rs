//! Per-outer-iteration convergence telemetry.
//!
//! Liavas & Sidiropoulos (2015) and Huang et al. (2016) both stress that
//! AO-ADMM behavior is only interpretable through per-iteration residual
//! and fit traces. [`ConvergenceLog`] collects exactly that — one
//! [`ModeUpdateRecord`] per mode visit (ADMM inner-iteration count,
//! primal/dual residuals, rho) and one [`IterationRecord`] per outer
//! iteration (fit, relative error) — into two flat, pre-allocated vectors
//! so the solver's steady-state loop stays allocation-free (the invariant
//! `tests/zero_alloc.rs` enforces).

use std::io::Write;

use serde::Serialize;
use serde_json::Value;

/// Telemetry for one mode visit (Algorithm 1, line 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModeUpdateRecord {
    /// Outer iteration index (0-based).
    pub iter: u32,
    /// Mode updated.
    pub mode: u32,
    /// Inner iterations the update scheme executed.
    pub inner_iters: u32,
    /// Final relative primal residual (`None` for MU/HALS, which have no
    /// ADMM residuals).
    pub primal_residual: Option<f64>,
    /// Final relative dual residual (`None` for MU/HALS).
    pub dual_residual: Option<f64>,
    /// ADMM penalty parameter `rho = trace(S)/R` (`None` for MU/HALS).
    pub rho: Option<f64>,
}

/// Telemetry for one outer AO iteration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IterationRecord {
    /// Outer iteration index (0-based).
    pub iter: u32,
    /// CP fit `1 - ||X - model|| / ||X||` (`None` when fit tracking is
    /// off).
    pub fit: Option<f64>,
    /// Relative error `||X - model|| / ||X|| = 1 - fit`.
    pub rel_error: Option<f64>,
    /// Per-mode update telemetry, in update order.
    pub modes: Vec<ModeUpdateRecord>,
}

/// Flat row for one outer iteration (kept `Copy` so the hot loop pushes
/// into pre-allocated storage without touching the heap).
#[derive(Debug, Clone, Copy, PartialEq)]
struct IterRow {
    iter: u32,
    fit: Option<f64>,
    rel_error: Option<f64>,
}

/// Allocation-free collector for convergence telemetry.
///
/// Capacity is reserved up front ([`ConvergenceLog::with_capacity`]); the
/// per-iteration [`log_mode`](Self::log_mode) and
/// [`end_iteration`](Self::end_iteration) calls push `Copy` rows into that
/// storage. [`records`](Self::records) assembles the nested
/// [`IterationRecord`] view after the run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceLog {
    iter_rows: Vec<IterRow>,
    mode_rows: Vec<ModeUpdateRecord>,
    cur_iter: u32,
}

impl ConvergenceLog {
    /// A log with room for `max_iters` outer iterations of `nmodes` mode
    /// visits each; within that budget no later call allocates.
    pub fn with_capacity(max_iters: usize, nmodes: usize) -> Self {
        Self {
            iter_rows: Vec::with_capacity(max_iters),
            mode_rows: Vec::with_capacity(max_iters * nmodes),
            cur_iter: 0,
        }
    }

    /// Records one mode visit in the current outer iteration.
    #[allow(clippy::too_many_arguments)]
    pub fn log_mode(
        &mut self,
        mode: usize,
        inner_iters: usize,
        primal_residual: Option<f64>,
        dual_residual: Option<f64>,
        rho: Option<f64>,
    ) {
        self.mode_rows.push(ModeUpdateRecord {
            iter: self.cur_iter,
            mode: mode as u32,
            inner_iters: inner_iters as u32,
            primal_residual,
            dual_residual,
            rho,
        });
    }

    /// Closes the current outer iteration with its fit (if tracked);
    /// `rel_error` is derived as `1 - fit`.
    pub fn end_iteration(&mut self, fit: Option<f64>) {
        self.iter_rows.push(IterRow { iter: self.cur_iter, fit, rel_error: fit.map(|f| 1.0 - f) });
        self.cur_iter += 1;
    }

    /// Outer iterations recorded so far.
    pub fn len(&self) -> usize {
        self.iter_rows.len()
    }

    /// True when no iteration has been recorded.
    pub fn is_empty(&self) -> bool {
        self.iter_rows.is_empty()
    }

    /// Assembles the nested per-iteration view (allocates; call after the
    /// run, not inside the hot loop).
    pub fn records(&self) -> Vec<IterationRecord> {
        self.iter_rows
            .iter()
            .map(|row| IterationRecord {
                iter: row.iter,
                fit: row.fit,
                rel_error: row.rel_error,
                modes: self.mode_rows.iter().filter(|m| m.iter == row.iter).copied().collect(),
            })
            .collect()
    }
}

/// Writes iteration records as JSON Lines: one compact JSON object per
/// line.
pub fn write_jsonl<W: Write>(records: &[IterationRecord], mut w: W) -> std::io::Result<()> {
    for rec in records {
        let line = serde_json::to_string(rec).expect("IterationRecord serializes");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parses JSON Lines back into iteration records, rejecting any malformed
/// line.
pub fn read_jsonl(text: &str) -> Result<Vec<IterationRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str::<Value>(line)
                .map_err(|e| format!("events.jsonl line {}: {e}", i + 1))
                .and_then(|v| {
                    iteration_from_value(&v)
                        .map_err(|e| format!("events.jsonl line {}: {e}", i + 1))
                })
        })
        .collect()
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as u32)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn get_opt_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn mode_from_value(v: &Value) -> Result<ModeUpdateRecord, String> {
    Ok(ModeUpdateRecord {
        iter: get_u32(v, "iter")?,
        mode: get_u32(v, "mode")?,
        inner_iters: get_u32(v, "inner_iters")?,
        primal_residual: get_opt_f64(v, "primal_residual"),
        dual_residual: get_opt_f64(v, "dual_residual"),
        rho: get_opt_f64(v, "rho"),
    })
}

fn iteration_from_value(v: &Value) -> Result<IterationRecord, String> {
    let modes = v
        .get("modes")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing modes array".to_string())?
        .iter()
        .map(mode_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(IterationRecord {
        iter: get_u32(v, "iter")?,
        fit: get_opt_f64(v, "fit"),
        rel_error: get_opt_f64(v, "rel_error"),
        modes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ConvergenceLog {
        let mut log = ConvergenceLog::with_capacity(2, 3);
        for iter in 0..2u32 {
            for mode in 0..3usize {
                log.log_mode(mode, 10, Some(1e-3 / (iter + 1) as f64), Some(2e-3), Some(0.5));
            }
            log.end_iteration(Some(0.8 + 0.05 * iter as f64));
        }
        log
    }

    #[test]
    fn records_group_modes_by_iteration() {
        let recs = sample_log().records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].modes.len(), 3);
        assert_eq!(recs[1].modes.len(), 3);
        assert_eq!(recs[1].modes[2].mode, 2);
        assert_eq!(recs[0].fit, Some(0.8));
        assert!((recs[0].rel_error.unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hot_path_does_not_allocate_within_capacity() {
        let mut log = ConvergenceLog::with_capacity(4, 2);
        let (ic, mc) = (log.iter_rows.capacity(), log.mode_rows.capacity());
        for _ in 0..4 {
            log.log_mode(0, 5, None, None, None);
            log.log_mode(1, 5, None, None, None);
            log.end_iteration(None);
        }
        assert_eq!(log.iter_rows.capacity(), ic, "iter rows must not regrow");
        assert_eq!(log.mode_rows.capacity(), mc, "mode rows must not regrow");
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn jsonl_round_trips() {
        let recs = sample_log().records();
        let mut buf = Vec::new();
        write_jsonl(&recs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2, "one line per iteration");
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn jsonl_rejects_malformed_lines() {
        assert!(read_jsonl("{\"iter\":0").is_err());
        assert!(read_jsonl("not json at all").is_err());
    }

    #[test]
    fn untracked_fit_serializes_without_nan() {
        let mut log = ConvergenceLog::with_capacity(1, 1);
        log.log_mode(0, 1, None, None, None);
        log.end_iteration(None);
        let mut buf = Vec::new();
        write_jsonl(&log.records(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("NaN"));
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back[0].fit, None);
    }
}
