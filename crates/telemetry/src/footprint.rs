//! Byte-exact deep heap footprint accounting.
//!
//! [`MemoryFootprint`] reports the heap bytes a structure *actually owns*,
//! broken into named components — not a logical estimate. The contract is
//! capacity-derived exactness: every `Vec<T>` contributes
//! `capacity() * size_of::<T>()` (zero-capacity vectors own no allocation),
//! and nested vectors contribute their spine plus each inner buffer. That
//! is precisely what the counting allocator ([`crate::alloc`]) tallies
//! when the structure is built, so `heap_bytes()` can be cross-checked
//! against live-byte construction deltas in tests, and the occupancy
//! planner can trust the numbers down to the byte.
//!
//! Components are labels like `"values"` or `"levels.fids"`; nesting
//! flattens with a dot. Component order is insertion order (stable for a
//! given implementation), and repeated names accumulate.

use std::collections::BTreeMap;

/// A named breakdown of owned heap bytes. The sum of the components is the
/// structure's deep heap footprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    components: Vec<(String, u64)>,
}

impl Footprint {
    /// An empty footprint (no components, zero bytes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` under `name`, accumulating if the name repeats.
    pub fn add(&mut self, name: &str, bytes: u64) {
        if let Some(entry) = self.components.iter_mut().find(|(n, _)| n == name) {
            entry.1 += bytes;
        } else {
            self.components.push((name.to_string(), bytes));
        }
    }

    /// Merges another footprint under a `prefix.` namespace.
    pub fn add_nested(&mut self, prefix: &str, inner: &Footprint) {
        for (name, bytes) in &inner.components {
            self.add(&format!("{prefix}.{name}"), *bytes);
        }
    }

    /// Total owned heap bytes (sum of all components).
    pub fn total(&self) -> u64 {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// The named components in insertion order.
    pub fn components(&self) -> &[(String, u64)] {
        &self.components
    }

    /// Bytes of one component by name (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.components.iter().find(|(n, _)| n == name).map_or(0, |(_, b)| *b)
    }

    /// The components as a sorted name → bytes map (for JSON output).
    pub fn as_map(&self) -> BTreeMap<String, u64> {
        self.components.iter().map(|(n, b)| (n.clone(), *b)).collect()
    }
}

/// Deep, byte-exact heap footprint of a structure.
pub trait MemoryFootprint {
    /// The owned heap bytes, broken into named components.
    fn footprint(&self) -> Footprint;

    /// Total owned heap bytes ([`Footprint::total`] of [`footprint`](Self::footprint)).
    fn heap_bytes(&self) -> u64 {
        self.footprint().total()
    }
}

/// Heap bytes owned by a `Vec<T>`: `capacity() * size_of::<T>()`. A
/// capacity-0 vector owns no allocation and contributes 0 — exactly the
/// allocator's view.
pub fn vec_heap_bytes<T>(v: &Vec<T>) -> u64 {
    (v.capacity() * std::mem::size_of::<T>()) as u64
}

/// Deep heap bytes of a `Vec<Vec<T>>`: the outer spine
/// (`capacity() * size_of::<Vec<T>>()`) plus every inner buffer.
pub fn nested_vec_heap_bytes<T>(v: &Vec<Vec<T>>) -> u64 {
    let spine = (v.capacity() * std::mem::size_of::<Vec<T>>()) as u64;
    spine + v.iter().map(vec_heap_bytes).sum::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_accumulate_and_total() {
        let mut fp = Footprint::new();
        fp.add("values", 100);
        fp.add("indices", 50);
        fp.add("values", 20);
        assert_eq!(fp.total(), 170);
        assert_eq!(fp.get("values"), 120);
        assert_eq!(fp.get("missing"), 0);
        assert_eq!(fp.components().len(), 2);
    }

    #[test]
    fn nesting_flattens_with_a_dot() {
        let mut inner = Footprint::new();
        inner.add("data", 64);
        let mut outer = Footprint::new();
        outer.add_nested("factor", &inner);
        assert_eq!(outer.get("factor.data"), 64);
        assert_eq!(outer.total(), 64);
    }

    #[test]
    fn vec_heap_bytes_is_capacity_derived() {
        let v: Vec<u32> = Vec::with_capacity(10);
        assert_eq!(vec_heap_bytes(&v), 40, "capacity counts even when empty");
        let empty: Vec<u64> = Vec::new();
        assert_eq!(vec_heap_bytes(&empty), 0, "capacity 0 owns no allocation");
    }

    #[test]
    fn nested_vec_counts_spine_and_inners() {
        let mut v: Vec<Vec<u8>> = Vec::with_capacity(3);
        v.push(Vec::with_capacity(5));
        v.push(Vec::new());
        let spine = 3 * std::mem::size_of::<Vec<u8>>() as u64;
        assert_eq!(nested_vec_heap_bytes(&v), spine + 5);
    }

    #[test]
    fn trait_default_heap_bytes_sums_components() {
        struct Two;
        impl MemoryFootprint for Two {
            fn footprint(&self) -> Footprint {
                let mut fp = Footprint::new();
                fp.add("a", 1);
                fp.add("b", 2);
                fp
            }
        }
        assert_eq!(Two.heap_bytes(), 3);
    }
}
