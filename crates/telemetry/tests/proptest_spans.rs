//! Property-based tests of span nesting: for arbitrary balanced
//! enter/exit trees, every span is recorded, children sit exactly one
//! level below their parent, and a child's interval never escapes its
//! parent's.

use cstf_telemetry::{spans, Span, SpanRecord};
use proptest::prelude::*;

/// Executes a uniform span tree of the given depth and breadth on the
/// current thread, returning the number of spans entered.
fn run_tree(depth: usize, breadth: usize) -> usize {
    let _node = Span::enter("node");
    let mut count = 1;
    if depth > 1 {
        for _ in 0..breadth {
            count += run_tree(depth - 1, breadth);
        }
    }
    count
}

/// Records from one isolated tree execution (the span system is
/// process-global, so each case fences itself off).
fn records_for_tree(depth: usize, breadth: usize) -> (usize, Vec<SpanRecord>) {
    spans::clear();
    cstf_telemetry::set_spans_enabled(true);
    let entered = run_tree(depth, breadth);
    cstf_telemetry::set_spans_enabled(false);
    let records = spans::drain();
    (entered, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn balanced_trees_record_every_span_with_correct_nesting(
        depth in 1usize..5,
        breadth in 1usize..4,
    ) {
        let (entered, records) = records_for_tree(depth, breadth);

        // Balanced enter/exit: one record per span entered, none lost.
        prop_assert_eq!(records.len(), entered);

        // Depths span exactly 0..depth-1 on a uniform tree.
        let max_depth = records.iter().map(|r| r.depth).max().unwrap();
        prop_assert_eq!(max_depth as usize, depth - 1);

        // Every non-root record has a parent one level up that encloses
        // it: child intervals never escape their parent (child <= parent).
        for child in records.iter().filter(|r| r.depth > 0) {
            prop_assert!(
                records.iter().any(|p| p.encloses(child)),
                "span at depth {} start {} has no enclosing parent",
                child.depth,
                child.start_ns
            );
        }

        // Roots are balanced too: depth-0 spans equal the single tree root.
        prop_assert_eq!(records.iter().filter(|r| r.depth == 0).count(), 1);
    }
}
